// Strategy registry: pluggable per-path scheduling strategies on top of the
// list scheduler. A strategy produces the (optimal) schedule of one
// alternative path; the merging algorithm of package core consumes the
// resulting schedules unchanged, so every strategy opens a quality-vs-time
// tradeoff without touching the table generation.
//
// Built-in strategies:
//
//   - "critical-path" (the default): one list-scheduling run with the
//     longest-remaining-path priority, exactly the scheduler of the paper;
//   - "urgency": one run with the partial-critical-path priority, which
//     extends every remaining chain with the condition broadcast time τ0 per
//     condition decided along it (communication latency is already in the
//     chain because communication processes are explicit nodes);
//   - "tabu": a tabu-search improvement loop in the spirit of the heuristic
//     mapping/scheduling work the paper cites: starting from the
//     critical-path schedule, it repeatedly promotes late-finishing processes
//     to the front of the priority order, re-evaluates each move with a
//     PriorityFixedOrder run on the zero-alloc Scratch, keeps a tabu list of
//     recently moved processes, and returns the best schedule found. The
//     loop is bounded by iterations (and optionally wall-clock budget) and
//     never returns a schedule worse than the critical-path baseline.
//
// Strategies are registered under a string key so documents, HTTP requests
// and command-line flags can select them by name; RegisterStrategy lets
// downstream code plug in more.
package listsched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/cpg"
	"repro/internal/sched"
)

// DefaultStrategy is the name of the paper's own per-path scheduler.
const DefaultStrategy = "critical-path"

// Tabu-search defaults, used when the corresponding StrategyParams field is
// zero. They are chosen so that the default loop is deterministic and cheap
// enough for ablation sweeps while still improving a measurable fraction of
// the generated paths.
const (
	// DefaultTabuIterations bounds the improvement iterations per path.
	DefaultTabuIterations = 24
	// DefaultTabuNeighbors bounds the moves evaluated per iteration.
	DefaultTabuNeighbors = 8
	// DefaultTabuTenure is the number of iterations a moved process stays
	// tabu.
	DefaultTabuTenure = 5
	// DefaultTabuStagnation stops the loop after this many consecutive
	// iterations without improving the best schedule.
	DefaultTabuStagnation = 6
)

// StrategyParams tunes a strategy run. The zero value selects the defaults
// of every strategy; fields irrelevant to the selected strategy are ignored.
type StrategyParams struct {
	// TabuIterations bounds the tabu improvement iterations per path
	// (0 = DefaultTabuIterations, negative disables the loop and returns
	// the critical-path baseline).
	TabuIterations int
	// TabuNeighbors bounds the candidate moves evaluated per iteration
	// (0 = DefaultTabuNeighbors).
	TabuNeighbors int
	// Budget bounds the wall-clock time of the improvement loop per path
	// (0 = unbounded). A positive budget trades determinism for latency:
	// two runs may cut the loop at different iterations, so leave it zero
	// whenever reproducible output matters (it is deliberately not part of
	// the problem document).
	Budget time.Duration
}

// Strategy produces the schedule of one alternative path. Implementations
// must be stateless (or internally synchronized): one Strategy value is
// shared by every worker goroutine of a scheduling run, with per-worker
// Scratch values carrying all mutable state.
type Strategy interface {
	// Name is the registry key ("critical-path", "urgency", "tabu", ...).
	Name() string
	// Describe returns a one-line human-readable description.
	Describe() string
	// SchedulePath builds a schedule for the active subgraph sub on
	// architecture a, reusing the scratch buffers.
	SchedulePath(sc *Scratch, sub *cpg.Subgraph, a *arch.Architecture, p StrategyParams) (*sched.PathSchedule, *Diagnostics, error)
}

var (
	strategyMu sync.RWMutex
	strategies = map[string]Strategy{}
)

// RegisterStrategy adds a strategy to the registry. It panics on an empty
// name or a duplicate registration — strategy names are part of the document
// format and must be unambiguous.
func RegisterStrategy(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("listsched: RegisterStrategy with empty name")
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategies[name]; dup {
		panic(fmt.Sprintf("listsched: strategy %q registered twice", name))
	}
	strategies[name] = s
}

// LookupStrategy returns the registered strategy with the given name.
func LookupStrategy(name string) (Strategy, bool) {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	s, ok := strategies[name]
	return s, ok
}

// StrategyNames returns the names of all registered strategies, sorted
// alphabetically (so ablations and documentation are deterministic).
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	out := make([]string, 0, len(strategies))
	for name := range strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterStrategy(priorityStrategy{
		name: DefaultStrategy,
		desc: "longest-remaining-path list scheduling (the paper's scheduler)",
		prio: PriorityCriticalPath,
	})
	RegisterStrategy(priorityStrategy{
		name: "urgency",
		desc: "partial-critical-path priority weighting condition-broadcast latency (τ0 per decided condition)",
		prio: PriorityUrgency,
	})
	RegisterStrategy(tabuStrategy{})
}

// priorityStrategy is a single list-scheduling run under a fixed priority
// function.
type priorityStrategy struct {
	name string
	desc string
	prio Priority
}

func (s priorityStrategy) Name() string     { return s.name }
func (s priorityStrategy) Describe() string { return s.desc }

func (s priorityStrategy) SchedulePath(sc *Scratch, sub *cpg.Subgraph, a *arch.Architecture, _ StrategyParams) (*sched.PathSchedule, *Diagnostics, error) {
	return sc.Schedule(sub, a, Options{Priority: s.prio})
}

// tabuStrategy improves the critical-path schedule of a path by tabu search
// over priority orders.
type tabuStrategy struct{}

func (tabuStrategy) Name() string { return "tabu" }
func (tabuStrategy) Describe() string {
	return "tabu-search improvement of the critical-path schedule (promote-late-finishers neighborhood)"
}

// tabuCandidate is one move of the neighborhood: promote the process to the
// front of the priority order.
type tabuCandidate struct {
	proc cpg.ProcID
	end  int64
}

func (tabuStrategy) SchedulePath(sc *Scratch, sub *cpg.Subgraph, a *arch.Architecture, p StrategyParams) (*sched.PathSchedule, *Diagnostics, error) {
	best, diag, err := sc.Schedule(sub, a, Options{Priority: PriorityCriticalPath})
	if err != nil {
		return nil, diag, err
	}
	iters := p.TabuIterations
	switch {
	case iters < 0:
		return best, diag, nil
	case iters == 0:
		iters = DefaultTabuIterations
	}
	neighbors := p.TabuNeighbors
	if neighbors <= 0 {
		neighbors = DefaultTabuNeighbors
	}
	// A path with no contention to reorder cannot improve: every process on
	// a two-activity path starts at its earliest feasible moment already.
	if sub.NumActive() <= 3 || best.Delay == 0 {
		return best, diag, nil
	}
	var deadline time.Time
	if p.Budget > 0 {
		//lint:allow nowallclock Budget is a wall-clock cutoff by contract; budgeted runs bypass the deterministic memo
		deadline = time.Now().Add(p.Budget)
	}

	g := sub.G
	cur := best
	order := make(map[sched.Key]int64, cur.Len())
	tabuUntil := make(map[cpg.ProcID]int, neighbors)
	cands := make([]tabuCandidate, 0, cur.Len())
	stagnant := 0
	for it := 0; it < iters && stagnant < DefaultTabuStagnation; it++ {
		//lint:allow nowallclock Budget is a wall-clock cutoff by contract; budgeted runs bypass the deterministic memo
		if p.Budget > 0 && time.Now().After(deadline) {
			break
		}
		// Fixed order of the current schedule, and the candidate moves:
		// real processes sorted by end time descending (the late finishers
		// bound the makespan), ties by identifier ascending — fully
		// deterministic, so the whole loop is reproducible.
		cands = cands[:0]
		for _, e := range cur.Entries() {
			order[e.Key] = e.Start
			if e.Key.IsCond {
				continue
			}
			if proc := g.Process(e.Key.Proc); proc == nil || proc.IsDummy() {
				continue
			}
			cands = append(cands, tabuCandidate{proc: e.Key.Proc, end: e.End})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].end != cands[j].end {
				return cands[i].end > cands[j].end
			}
			return cands[i].proc < cands[j].proc
		})

		var bestMove *sched.PathSchedule
		bestProc := cpg.NoProc
		tried := 0
		for _, c := range cands {
			if tried >= neighbors {
				break
			}
			tried++
			key := sched.ProcKey(c.proc)
			saved := order[key]
			order[key] = -1 // promote: schedule as soon as it becomes ready
			trial, _, err := sc.Schedule(sub, a, Options{Priority: PriorityFixedOrder, Order: order})
			order[key] = saved
			if err != nil {
				return nil, diag, err
			}
			// Aspiration: a tabu move is only admissible when it beats the
			// best schedule seen so far.
			if tabuUntil[c.proc] > it && trial.Delay >= best.Delay {
				continue
			}
			if bestMove == nil || trial.Delay < bestMove.Delay {
				bestMove, bestProc = trial, c.proc
			}
		}
		if bestMove == nil {
			break // every evaluated move is tabu and none aspires
		}
		cur = bestMove
		tabuUntil[bestProc] = it + 1 + DefaultTabuTenure
		if cur.Delay < best.Delay {
			best = cur
			stagnant = 0
		} else {
			stagnant++
		}
	}
	return best, diag, nil
}
