package listsched_test

// This file keeps a faithful port of the original list scheduler — the
// O(n²·log n) implementation that rescanned and re-sorted the ready list on
// every iteration and kept all state in maps — and checks that the rewritten
// heap-based, slice-backed scheduler produces exactly the same schedules,
// condition timings, delays and diagnostics on the worked example of the
// paper and on a sweep of generated graphs, for both priority functions and
// with locked activation times.

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/sched"
)

// refTimeline is the original linear-scan resource timeline.
type refTimeline struct {
	busy []sched.Interval
}

func (t *refTimeline) Reserve(start, dur int64) {
	if dur <= 0 {
		return
	}
	iv := sched.Interval{Start: start, End: start + dur}
	idx := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].Start >= iv.Start })
	t.busy = append(t.busy, sched.Interval{})
	copy(t.busy[idx+1:], t.busy[idx:])
	t.busy[idx] = iv
}

func (t *refTimeline) EarliestFit(earliest, dur int64) int64 {
	if dur <= 0 {
		return earliest
	}
	start := earliest
	for _, iv := range t.busy {
		if iv.End <= start {
			continue
		}
		if iv.Start >= start+dur {
			break
		}
		start = iv.End
	}
	return start
}

func (t *refTimeline) Overlaps() bool {
	for i := 1; i < len(t.busy); i++ {
		if t.busy[i-1].End > t.busy[i].Start {
			return true
		}
	}
	return false
}

// referenceSchedule is the seed implementation of listsched.Schedule.
func referenceSchedule(sub *cpg.Subgraph, a *arch.Architecture, opt listsched.Options) (*sched.PathSchedule, *listsched.Diagnostics, error) {
	g := sub.G
	diag := &listsched.Diagnostics{}
	ps := sched.NewPathSchedule(sub.Label)

	active := sub.ActiveProcs()
	if len(active) == 0 {
		return ps, diag, nil
	}

	exec := func(p cpg.ProcID) int64 {
		return a.EffectiveExec(g.Process(p).Exec, g.Process(p).PE)
	}

	cp := sub.CriticalPathLengths(exec)
	prio := func(p cpg.ProcID) float64 {
		switch opt.Priority {
		case listsched.PriorityFixedOrder:
			if v, ok := opt.Order[sched.ProcKey(p)]; ok {
				return float64(v)
			}
			return math.MaxFloat64/2 - float64(cp[p])
		default:
			return -float64(cp[p])
		}
	}

	timelines := map[arch.PEID]*refTimeline{}
	timeline := func(pe arch.PEID) *refTimeline {
		tl, ok := timelines[pe]
		if !ok {
			tl = &refTimeline{}
			timelines[pe] = tl
		}
		return tl
	}
	for key, lock := range opt.Locked {
		if key.IsCond {
			if a.Valid(lock.Bus) && a.IsSequential(lock.Bus) {
				timeline(lock.Bus).Reserve(lock.Start, a.CondTime)
			}
			continue
		}
		if !sub.Active(key.Proc) {
			continue
		}
		p := g.Process(key.Proc)
		if p == nil {
			continue
		}
		if a.IsSequential(p.PE) {
			timeline(p.PE).Reserve(lock.Start, exec(p.ID))
		}
	}

	deciders := map[cpg.ProcID][]*cpg.CondDef{}
	for _, c := range sub.DecidedConds() {
		def := g.Condition(c)
		deciders[def.Decider] = append(deciders[def.Decider], def)
	}
	broadcastBuses := a.BroadcastBuses()
	needBroadcast := len(a.ComputePEs()) > 1 && len(broadcastBuses) > 0

	guardCube := map[cpg.ProcID]cond.Cube{}
	for _, p := range active {
		if c, ok := g.Guard(p).SatisfiedCube(sub.Label); ok {
			guardCube[p] = c
		} else {
			guardCube[p] = cond.True()
		}
	}

	scheduleBroadcast := func(def *cpg.CondDef, decEnd int64, deciderPE arch.PEID) {
		value, _ := sub.Label.Value(def.ID)
		key := sched.CondKey(def.ID)
		if lock, ok := opt.Locked[key]; ok {
			bus := lock.Bus
			end := lock.Start + a.CondTime
			if !a.Valid(bus) {
				end = lock.Start
			}
			ps.Set(sched.Entry{Key: key, Start: lock.Start, End: end, PE: bus})
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: lock.Start, BroadcastEnd: end, Bus: bus,
			})
			if lock.Start < decEnd {
				diag.LockViolations = append(diag.LockViolations, listsched.LockViolation{Key: key, Locked: lock.Start, Earliest: decEnd})
			}
			return
		}
		if !needBroadcast {
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: decEnd, BroadcastEnd: decEnd, Bus: arch.NoPE,
			})
			return
		}
		bestBus := broadcastBuses[0]
		bestStart := int64(math.MaxInt64)
		for _, b := range broadcastBuses {
			s := timeline(b).EarliestFit(decEnd, a.CondTime)
			if s < bestStart {
				bestStart = s
				bestBus = b
			}
		}
		timeline(bestBus).Reserve(bestStart, a.CondTime)
		end := bestStart + a.CondTime
		ps.Set(sched.Entry{Key: key, Start: bestStart, End: end, PE: bestBus})
		ps.SetCond(sched.CondTiming{
			Cond: def.ID, Value: value,
			DecidedAt: decEnd, DeciderPE: deciderPE,
			BroadcastStart: bestStart, BroadcastEnd: end, Bus: bestBus,
		})
	}

	remaining := map[cpg.ProcID]int{}
	scheduled := map[cpg.ProcID]bool{}
	endOf := map[cpg.ProcID]int64{}
	for _, p := range active {
		remaining[p] = len(sub.Preds(p))
	}

	readyList := func() []cpg.ProcID {
		var out []cpg.ProcID
		for _, p := range active {
			if !scheduled[p] && remaining[p] == 0 {
				out = append(out, p)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			pi, pj := prio(out[i]), prio(out[j])
			if pi != pj {
				return pi < pj
			}
			return out[i] < out[j]
		})
		return out
	}

	for count := 0; count < len(active); count++ {
		ready := readyList()
		if len(ready) == 0 {
			return nil, diag, errReferenceStuck
		}
		p := ready[0]
		proc := g.Process(p)
		dur := exec(p)

		est := int64(0)
		for _, q := range sub.Preds(p) {
			if endOf[q] > est {
				est = endOf[q]
			}
		}
		if proc.PE != arch.NoPE {
			for _, l := range guardCube[p].Lits() {
				if at, ok := ps.KnownTime(l.Cond, proc.PE); ok && at > est {
					est = at
				}
			}
		}

		var start int64
		if lock, locked := opt.Locked[sched.ProcKey(p)]; locked {
			start = lock.Start
			if est > start {
				diag.LockViolations = append(diag.LockViolations, listsched.LockViolation{Key: sched.ProcKey(p), Locked: start, Earliest: est})
				start = est
			}
		} else if a.IsSequential(proc.PE) {
			start = timeline(proc.PE).EarliestFit(est, dur)
			timeline(proc.PE).Reserve(start, dur)
		} else {
			start = est
		}
		end := start + dur
		ps.Set(sched.Entry{Key: sched.ProcKey(p), Start: start, End: end, PE: proc.PE})
		scheduled[p] = true
		endOf[p] = end

		for _, def := range deciders[p] {
			scheduleBroadcast(def, end, proc.PE)
		}

		for _, q := range sub.Succs(p) {
			remaining[q]--
		}
	}

	if e, ok := ps.Entry(sched.ProcKey(g.Sink())); ok {
		ps.Delay = e.Start
	} else {
		var max int64
		for _, e := range ps.Entries() {
			if e.End > max {
				max = e.End
			}
		}
		ps.Delay = max
	}

	for pe, tl := range timelines {
		if tl.Overlaps() {
			diag.ResourceOverlaps = append(diag.ResourceOverlaps, pe)
		}
	}
	sort.Slice(diag.ResourceOverlaps, func(i, j int) bool { return diag.ResourceOverlaps[i] < diag.ResourceOverlaps[j] })
	return ps, diag, nil
}

var errReferenceStuck = &referenceError{}

type referenceError struct{}

func (*referenceError) Error() string { return "reference: no ready process" }

// comparable projections of a schedule.
func entriesOf(ps *sched.PathSchedule) []sched.Entry {
	return append([]sched.Entry(nil), ps.Entries()...)
}

func condsOf(ps *sched.PathSchedule) []sched.CondTiming {
	return append([]sched.CondTiming(nil), ps.Conds()...)
}

// compareRun schedules the subgraph with both implementations and fails the
// test on any observable difference.
func compareRun(t *testing.T, name string, sub *cpg.Subgraph, a *arch.Architecture, sc *listsched.Scratch, opt listsched.Options) *sched.PathSchedule {
	t.Helper()
	got, gotDiag, gotErr := sc.Schedule(sub, a, opt)
	want, wantDiag, wantErr := referenceSchedule(sub, a, opt)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: error mismatch: heap=%v reference=%v", name, gotErr, wantErr)
	}
	if gotErr != nil {
		return nil
	}
	if got.Delay != want.Delay {
		t.Fatalf("%s: delay %d, reference %d", name, got.Delay, want.Delay)
	}
	if ge, we := entriesOf(got), entriesOf(want); !reflect.DeepEqual(ge, we) {
		t.Fatalf("%s: entries differ:\nheap:      %v\nreference: %v", name, ge, we)
	}
	if gc, wc := condsOf(got), condsOf(want); !reflect.DeepEqual(gc, wc) {
		t.Fatalf("%s: condition timings differ:\nheap:      %v\nreference: %v", name, gc, wc)
	}
	if !reflect.DeepEqual(gotDiag.LockViolations, wantDiag.LockViolations) {
		t.Fatalf("%s: lock violations differ: %v vs %v", name, gotDiag.LockViolations, wantDiag.LockViolations)
	}
	if !reflect.DeepEqual(gotDiag.ResourceOverlaps, wantDiag.ResourceOverlaps) {
		t.Fatalf("%s: resource overlaps differ: %v vs %v", name, gotDiag.ResourceOverlaps, wantDiag.ResourceOverlaps)
	}
	return got
}

// compareGraph exercises both priority functions and locked activation times
// on every alternative path of the graph.
func compareGraph(t *testing.T, name string, g *cpg.Graph, a *arch.Architecture) {
	t.Helper()
	paths, err := g.AlternativePaths(0)
	if err != nil {
		t.Fatalf("%s: AlternativePaths: %v", name, err)
	}
	sc := listsched.NewScratch()
	for i, p := range paths {
		sub := g.Subgraph(p)
		optimal := compareRun(t, name, sub, a, sc, listsched.Options{Priority: listsched.PriorityCriticalPath})
		if optimal == nil {
			continue
		}
		// Fixed-order rescheduling with every third activity locked at its
		// optimal time — the shape the merging algorithm produces.
		order := map[sched.Key]int64{}
		locked := map[sched.Key]listsched.Lock{}
		for j, e := range optimal.Entries() {
			order[e.Key] = e.Start
			if j%3 == 0 {
				l := listsched.Lock{Start: e.Start, Bus: arch.NoPE}
				if e.Key.IsCond {
					l.Bus = e.PE
				}
				locked[e.Key] = l
			}
		}
		compareRun(t, name+"/locked", sub, a, sc, listsched.Options{
			Priority: listsched.PriorityFixedOrder,
			Order:    order,
			Locked:   locked,
		})
		_ = i
	}
}

// TestHeapSchedulerMatchesReferenceFigure1 compares the rewritten scheduler
// against the seed implementation on the six alternative paths of the worked
// example.
func TestHeapSchedulerMatchesReferenceFigure1(t *testing.T) {
	g, a, err := expr.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	compareGraph(t, "figure1", g, a)
}

// TestHeapSchedulerMatchesReferenceGenerated compares the two implementations
// across a sweep of generated graphs of varying size, path count and
// architecture.
func TestHeapSchedulerMatchesReferenceGenerated(t *testing.T) {
	graphs := 120
	if testing.Short() {
		graphs = 20
	}
	for i := 0; i < graphs; i++ {
		nodes := []int{20, 40, 60, 80}[i%4]
		target := []int{4, 6, 10, 16}[i%4]
		r := rand.New(rand.NewSource(int64(4200 + i)))
		inst, err := gen.Generate(gen.RandomConfig(r, nodes, target))
		if err != nil {
			t.Fatalf("Generate(%d): %v", i, err)
		}
		compareGraph(t, inst.Graph.Name(), inst.Graph, inst.Arch)
	}
}
