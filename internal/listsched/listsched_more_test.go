package listsched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/sched"
)

// TestBroadcastPicksFirstAvailableBus builds an architecture with two
// all-connecting buses and blocks the first one with a long transfer around
// the decision moment; the broadcast must move to the free bus (the "first
// bus which becomes available" rule of section 3).
func TestBroadcastPicksFirstAvailableBus(t *testing.T) {
	a := arch.New()
	pe1 := a.AddProcessor("pe1", 1)
	pe2 := a.AddProcessor("pe2", 1)
	bus1 := a.AddBus("bus1", true)
	bus2 := a.AddBus("bus2", true)
	a.SetCondTime(2)

	g := cpg.New("buses")
	// A data producer whose transfer occupies bus1 across the decision time.
	src := g.AddProcess("SRC", 1, pe1)
	dst := g.AddProcess("DST", 1, pe2)
	comm := g.AddComm("big_transfer", 10, bus1)
	g.AddEdge(src, comm)
	g.AddEdge(comm, dst)
	// The disjunction process terminates at t=4 (after SRC, on the same CPU).
	d := g.AddProcess("D", 3, pe1)
	g.AddEdge(src, d)
	c := g.AddCondition("C", d)
	x := g.AddProcess("X", 2, pe2)
	y := g.AddProcess("Y", 2, pe1)
	g.AddCondEdge(d, x, c, true)
	g.AddCondEdge(d, y, c, false)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	label := cond.MustCube(cond.Lit{Cond: c, Val: true})
	ps, diag, err := Schedule(g.SubgraphFor(label), a, Options{})
	if err != nil || !diag.OK() {
		t.Fatalf("Schedule: %v %+v", err, diag)
	}
	ct, ok := ps.Cond(c)
	if !ok {
		t.Fatalf("condition timing missing")
	}
	commEntry, _ := ps.Entry(sched.ProcKey(comm))
	// If the big transfer overlaps the decision moment, the broadcast must
	// either use the other bus or wait; in no case may it overlap the
	// transfer on the same bus.
	if ct.Bus == bus1 && commEntry.Start < ct.BroadcastEnd && ct.BroadcastStart < commEntry.End {
		t.Fatalf("broadcast overlaps a transfer on the same bus: bcast [%d,%d) transfer [%d,%d)",
			ct.BroadcastStart, ct.BroadcastEnd, commEntry.Start, commEntry.End)
	}
	if commEntry.Start <= ct.DecidedAt && commEntry.End > ct.DecidedAt {
		// The transfer really does cover the decision moment, so the
		// broadcast should have moved to bus2 and started immediately.
		if ct.Bus != bus2 {
			t.Fatalf("broadcast should use the free bus, got bus %d", ct.Bus)
		}
		if ct.BroadcastStart != ct.DecidedAt {
			t.Fatalf("broadcast on the free bus should start immediately at %d, got %d", ct.DecidedAt, ct.BroadcastStart)
		}
	}
}

// TestLockedBroadcastRespected locks the broadcast of a condition at a fixed
// time on a fixed bus (as the merging algorithm does during adjustment).
func TestLockedBroadcastRespected(t *testing.T) {
	a := twoProcArch()
	g, ids, c := condGraph(t, a, 2)
	bus := a.Buses()[0]
	label := cond.MustCube(cond.Lit{Cond: c, Val: true})
	locked := map[sched.Key]Lock{sched.CondKey(c): {Start: 9, Bus: bus}}
	ps, diag, err := Schedule(g.SubgraphFor(label), a, Options{Locked: locked})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !diag.OK() {
		t.Fatalf("diagnostics: %+v", diag)
	}
	ct, _ := ps.Cond(c)
	if ct.BroadcastStart != 9 || ct.Bus != bus {
		t.Fatalf("locked broadcast not respected: %+v", ct)
	}
	// The guarded remote process must wait for the (late) locked broadcast.
	tEntry, _ := ps.Entry(sched.ProcKey(ids["T"]))
	if tEntry.Start < ct.BroadcastEnd {
		t.Fatalf("guarded process starts at %d before the locked broadcast ends at %d", tEntry.Start, ct.BroadcastEnd)
	}
}

// TestMemoryModuleIsSequentialResource maps two transfer processes to one
// memory module and checks they serialize, while two modules let them overlap.
func TestMemoryModuleIsSequentialResource(t *testing.T) {
	build := func(mems int) (*cpg.Graph, *arch.Architecture, []cpg.ProcID) {
		a := arch.New()
		pe1 := a.AddProcessor("pe1", 1)
		pe2 := a.AddProcessor("pe2", 1)
		a.AddBus("bus", true)
		var memIDs []arch.PEID
		for i := 0; i < mems; i++ {
			memIDs = append(memIDs, a.AddMemory(""))
		}
		g := cpg.New("mem")
		x := g.AddProcess("X", 2, pe1)
		y := g.AddProcess("Y", 2, pe2)
		mx := g.AddComm("mx", 6, memIDs[0])
		my := g.AddComm("my", 6, memIDs[len(memIDs)-1])
		g.AddEdge(x, mx)
		g.AddEdge(y, my)
		if err := g.Finalize(a); err != nil {
			t.Fatalf("Finalize: %v", err)
		}
		return g, a, []cpg.ProcID{mx, my}
	}
	g1, a1, acc1 := build(1)
	ps1, _, err := Schedule(singlePath(t, g1), a1, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e0, _ := ps1.Entry(sched.ProcKey(acc1[0]))
	e1, _ := ps1.Entry(sched.ProcKey(acc1[1]))
	if e0.Start < e1.End && e1.Start < e0.End {
		t.Fatalf("accesses to a single memory module must not overlap: %v %v", e0, e1)
	}

	g2, a2, acc2 := build(2)
	ps2, _, err := Schedule(singlePath(t, g2), a2, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	f0, _ := ps2.Entry(sched.ProcKey(acc2[0]))
	f1, _ := ps2.Entry(sched.ProcKey(acc2[1]))
	if !(f0.Start < f1.End && f1.Start < f0.End) {
		t.Fatalf("accesses to two memory modules should overlap: %v %v", f0, f1)
	}
	if ps2.Delay >= ps1.Delay && ps1.Delay > 8 {
		// With one module the makespan includes the serialized access.
		t.Logf("delays: 1 module %d, 2 modules %d", ps1.Delay, ps2.Delay)
	}
}

// TestZeroExecutionTimeProcesses checks that zero-time processes do not
// occupy resources and do not break the schedule.
func TestZeroExecutionTimeProcesses(t *testing.T) {
	a := twoProcArch()
	pe := a.Processors()[0]
	g := cpg.New("zero")
	x := g.AddProcess("X", 0, pe)
	y := g.AddProcess("Y", 5, pe)
	z := g.AddProcess("Z", 0, pe)
	g.AddEdge(x, y)
	g.AddEdge(y, z)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, diag, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil || !diag.OK() {
		t.Fatalf("Schedule: %v %+v", err, diag)
	}
	if ps.Delay != 5 {
		t.Fatalf("delay = %d, want 5", ps.Delay)
	}
	ez, _ := ps.Entry(sched.ProcKey(z))
	if ez.Start != 5 || ez.End != 5 {
		t.Fatalf("zero-time process timing wrong: %v", ez)
	}
}

// TestManyIndependentProcessesKeepProcessorBusy checks work conservation on a
// single processor: the makespan equals the sum of the execution times.
func TestManyIndependentProcessesKeepProcessorBusy(t *testing.T) {
	a := twoProcArch()
	pe := a.Processors()[0]
	g := cpg.New("busy")
	var sum int64
	for i := 0; i < 12; i++ {
		e := int64(1 + i%4)
		g.AddProcess("", e, pe)
		sum += e
	}
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if ps.Delay != sum {
		t.Fatalf("makespan %d, want %d (work conservation on one processor)", ps.Delay, sum)
	}
}
