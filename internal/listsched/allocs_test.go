package listsched_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cpg"
	"repro/internal/expr"
	"repro/internal/listsched"
)

// TestScheduleAllocsRegression pins the per-run allocation count of the list
// scheduler on the worked example of the paper. The scratch-reusing form only
// allocates the resulting PathSchedule (plus the per-entry map buckets); the
// convenience form adds the throwaway scratch buffers. If either bound
// regresses, an allocation crept back into the scheduling hot path.
func TestScheduleAllocsRegression(t *testing.T) {
	g, a, err := expr.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	paths, err := g.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	sub := g.Subgraph(paths[0])
	sc := listsched.NewScratch()
	if _, _, err := sc.Schedule(sub, a, listsched.Options{}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}

	reused := testing.AllocsPerRun(200, func() {
		if _, _, err := sc.Schedule(sub, a, listsched.Options{}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	})
	// One PathSchedule (struct + two maps + map growth for ~40 entries) and
	// the broadcast CondTiming records. The bitset cube representation keeps
	// guard evaluation allocation-free, roughly halving the old bound of 30.
	const maxReused = 16
	if reused > maxReused {
		t.Errorf("Scratch.Schedule allocates %.0f times per run, want <= %d", reused, maxReused)
	}

	fresh := testing.AllocsPerRun(200, func() {
		if _, _, err := listsched.Schedule(sub, a, listsched.Options{}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	})
	// Adds the throwaway scratch slices.
	const maxFresh = 45
	if fresh > maxFresh {
		t.Errorf("Schedule allocates %.0f times per run, want <= %d", fresh, maxFresh)
	}
}

// TestScratchReuseAcrossShrinkingGraphs schedules a large graph (whose
// disjunction processes have high identifiers) and then a much smaller graph
// with the same scratch. A regression here means reset replays the previous
// graph's dirty decider slots after truncating the buffers, which panics with
// an out-of-range index.
func TestScratchReuseAcrossShrinkingGraphs(t *testing.T) {
	big, bigArch, err := expr.Figure1() // 17 processes + comms, 3 conditions
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	bigPaths, err := big.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}

	smallArch := arch.New()
	cpu := smallArch.AddProcessor("cpu", 1)
	small := cpg.New("small")
	p1 := small.AddProcess("A", 2, cpu)
	p2 := small.AddProcess("B", 3, cpu)
	small.AddEdge(p1, p2)
	if err := small.Finalize(smallArch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	smallPaths, err := small.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths(small): %v", err)
	}

	sc := listsched.NewScratch()
	for i := 0; i < 3; i++ {
		for _, p := range bigPaths {
			if _, _, err := sc.Schedule(big.Subgraph(p), bigArch, listsched.Options{}); err != nil {
				t.Fatalf("Schedule(big): %v", err)
			}
		}
		for _, p := range smallPaths {
			ps, _, err := sc.Schedule(small.Subgraph(p), smallArch, listsched.Options{})
			if err != nil {
				t.Fatalf("Schedule(small): %v", err)
			}
			if ps.Delay != 5 {
				t.Fatalf("small graph delay = %d, want 5", ps.Delay)
			}
		}
	}
}
