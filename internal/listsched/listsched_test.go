package listsched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/sched"
)

// twoProcArch builds an architecture with two processors, one hardware
// element and one all-connecting bus, τ0 = 1.
func twoProcArch() *arch.Architecture {
	a := arch.New()
	a.AddProcessor("pe1", 1)
	a.AddProcessor("pe2", 1)
	a.AddHardware("hw")
	a.AddBus("bus", true)
	a.SetCondTime(1)
	return a
}

// chainGraph builds A -> B -> C on a single processor.
func chainGraph(t *testing.T, a *arch.Architecture) (*cpg.Graph, []cpg.ProcID) {
	t.Helper()
	pe := a.Processors()[0]
	g := cpg.New("chain")
	x := g.AddProcess("A", 3, pe)
	y := g.AddProcess("B", 4, pe)
	z := g.AddProcess("C", 5, pe)
	g.AddEdge(x, y)
	g.AddEdge(y, z)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g, []cpg.ProcID{x, y, z}
}

func singlePath(t *testing.T, g *cpg.Graph) *cpg.Subgraph {
	t.Helper()
	paths, err := g.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	if len(paths) != 1 {
		t.Fatalf("expected a single path, got %d", len(paths))
	}
	return g.Subgraph(paths[0])
}

func TestChainSchedule(t *testing.T) {
	a := twoProcArch()
	g, ids := chainGraph(t, a)
	ps, diag, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !diag.OK() {
		t.Fatalf("diagnostics not clean: %+v", diag)
	}
	starts := []int64{0, 3, 7}
	for i, id := range ids {
		e, ok := ps.Entry(sched.ProcKey(id))
		if !ok {
			t.Fatalf("missing entry for process %d", id)
		}
		if e.Start != starts[i] {
			t.Fatalf("process %d starts at %d, want %d", id, e.Start, starts[i])
		}
	}
	if ps.Delay != 12 {
		t.Fatalf("delay = %d, want 12", ps.Delay)
	}
}

func TestParallelismAcrossProcessors(t *testing.T) {
	a := twoProcArch()
	pe1, pe2 := a.Processors()[0], a.Processors()[1]
	g := cpg.New("par")
	x := g.AddProcess("X", 5, pe1)
	y := g.AddProcess("Y", 7, pe2)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	ey, _ := ps.Entry(sched.ProcKey(y))
	if ex.Start != 0 || ey.Start != 0 {
		t.Fatalf("independent processes on different processors must start at 0: %v %v", ex, ey)
	}
	if ps.Delay != 7 {
		t.Fatalf("delay = %d, want 7", ps.Delay)
	}
}

func TestSequentialProcessorExclusive(t *testing.T) {
	a := twoProcArch()
	pe1 := a.Processors()[0]
	g := cpg.New("seq")
	x := g.AddProcess("X", 5, pe1)
	y := g.AddProcess("Y", 7, pe1)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	ey, _ := ps.Entry(sched.ProcKey(y))
	if ex.Start < ey.Start {
		if ex.End > ey.Start {
			t.Fatalf("processes overlap on a sequential processor: %v %v", ex, ey)
		}
	} else if ey.End > ex.Start {
		t.Fatalf("processes overlap on a sequential processor: %v %v", ex, ey)
	}
	if ps.Delay != 12 {
		t.Fatalf("delay = %d, want 12", ps.Delay)
	}
}

func TestHardwareRunsInParallel(t *testing.T) {
	a := twoProcArch()
	hw := a.Hardware()[0]
	g := cpg.New("hw")
	g.AddProcess("X", 5, hw)
	g.AddProcess("Y", 7, hw)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if ps.Delay != 7 {
		t.Fatalf("hardware processes must run in parallel; delay = %d, want 7", ps.Delay)
	}
}

func TestCommunicationOnSharedBus(t *testing.T) {
	a := twoProcArch()
	pe1, pe2 := a.Processors()[0], a.Processors()[1]
	bus := a.Buses()[0]
	g := cpg.New("comm")
	x := g.AddProcess("X", 2, pe1)
	y := g.AddProcess("Y", 3, pe2)
	z := g.AddProcess("Z", 2, pe1)
	w := g.AddProcess("W", 4, pe2)
	g.AddEdge(x, y)
	g.AddEdge(z, w)
	if _, err := cpg.InsertComms(g, a, cpg.UniformComms(3, bus)); err != nil {
		t.Fatalf("InsertComms: %v", err)
	}
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, diag, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil || !diag.OK() {
		t.Fatalf("Schedule: %v %+v", err, diag)
	}
	// The two transfers share one bus, so they must not overlap.
	var comm []sched.Entry
	for _, e := range ps.Entries() {
		if !e.Key.IsCond && g.Process(e.Key.Proc).Kind == cpg.KindComm {
			comm = append(comm, e)
		}
	}
	if len(comm) != 2 {
		t.Fatalf("expected 2 communication entries, got %d", len(comm))
	}
	first, second := comm[0], comm[1]
	if first.Start > second.Start {
		first, second = second, first
	}
	if first.End > second.Start {
		t.Fatalf("bus transfers overlap: %v %v", first, second)
	}
	// Each communication starts after its producer terminates.
	exEnd, _ := ps.Entry(sched.ProcKey(x))
	for _, c := range comm {
		producer := g.Preds(c.Key.Proc)[0]
		pe, _ := ps.Entry(sched.ProcKey(producer))
		if c.Start < pe.End {
			t.Fatalf("communication starts before its producer finishes")
		}
	}
	_ = exEnd
}

// condGraph builds a cross-processor conditional graph:
//
//	D(pe1, 3) decides condition C
//	  --C-->  T(pe2, 4)
//	  --!C--> F(pe1, 2)
//	  join J(pe2, 1) (conjunction)
func condGraph(t *testing.T, a *arch.Architecture, commTime int64) (*cpg.Graph, map[string]cpg.ProcID, cond.Cond) {
	t.Helper()
	pe1, pe2 := a.Processors()[0], a.Processors()[1]
	bus := a.Buses()[0]
	g := cpg.New("cond")
	d := g.AddProcess("D", 3, pe1)
	tr := g.AddProcess("T", 4, pe2)
	fa := g.AddProcess("F", 2, pe1)
	j := g.AddProcess("J", 1, pe2)
	c := g.AddCondition("C", d)
	g.AddCondEdge(d, tr, c, true)
	g.AddCondEdge(d, fa, c, false)
	g.AddEdge(tr, j)
	g.AddEdge(fa, j)
	if _, err := cpg.InsertComms(g, a, cpg.UniformComms(commTime, bus)); err != nil {
		t.Fatalf("InsertComms: %v", err)
	}
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g, map[string]cpg.ProcID{"D": d, "T": tr, "F": fa, "J": j}, c
}

func TestConditionBroadcastScheduling(t *testing.T) {
	a := twoProcArch()
	g, ids, c := condGraph(t, a, 2)
	paths, err := g.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	for _, p := range paths {
		ps, diag, err := Schedule(g.Subgraph(p), a, Options{})
		if err != nil || !diag.OK() {
			t.Fatalf("Schedule(%v): %v %+v", p.Label, err, diag)
		}
		ct, ok := ps.Cond(c)
		if !ok {
			t.Fatalf("condition availability missing on path %v", p.Label)
		}
		dEnd, _ := ps.Entry(sched.ProcKey(ids["D"]))
		if ct.DecidedAt != dEnd.End {
			t.Fatalf("condition decided at %d, want %d", ct.DecidedAt, dEnd.End)
		}
		if ct.BroadcastStart < ct.DecidedAt {
			t.Fatalf("broadcast starts before the disjunction process terminates")
		}
		if ct.BroadcastEnd != ct.BroadcastStart+a.CondTime {
			t.Fatalf("broadcast duration must be τ0")
		}
		// The broadcast entry occupies the bus.
		be, ok := ps.Entry(sched.CondKey(c))
		if !ok || be.PE != a.Buses()[0] {
			t.Fatalf("broadcast entry missing or on wrong bus: %v %v", be, ok)
		}
	}
}

func TestKnowledgeConstraintDelaysRemoteGuardedProcess(t *testing.T) {
	a := twoProcArch()
	g, ids, c := condGraph(t, a, 2)
	// Path C=true: T runs on pe2 and is guarded by C which is decided on
	// pe1 at t=3. T's data arrives through a communication of 2 time units,
	// but it must also wait for the broadcast (1 unit after the decision,
	// possibly queued behind the data transfer on the same bus). In every
	// case T cannot start before the condition is known on pe2.
	label := cond.MustCube(cond.Lit{Cond: c, Val: true})
	ps, diag, err := Schedule(g.SubgraphFor(label), a, Options{})
	if err != nil || !diag.OK() {
		t.Fatalf("Schedule: %v %+v", err, diag)
	}
	tEntry, _ := ps.Entry(sched.ProcKey(ids["T"]))
	known, ok := ps.KnownTime(c, g.Process(ids["T"]).PE)
	if !ok {
		t.Fatalf("condition availability missing")
	}
	if tEntry.Start < known {
		t.Fatalf("guarded process starts at %d before its condition is known remotely at %d", tEntry.Start, known)
	}
	// On the path !C the guarded process F runs on the same processor as
	// the disjunction process and may start right after it.
	labelF := cond.MustCube(cond.Lit{Cond: c, Val: false})
	psF, _, err := Schedule(g.SubgraphFor(labelF), a, Options{})
	if err != nil {
		t.Fatalf("Schedule(!C): %v", err)
	}
	fEntry, _ := psF.Entry(sched.ProcKey(ids["F"]))
	dEntry, _ := psF.Entry(sched.ProcKey(ids["D"]))
	if fEntry.Start != dEntry.End {
		t.Fatalf("same-processor guarded process should start right after the decision: start=%d, decision end=%d", fEntry.Start, dEntry.End)
	}
}

func TestDependenciesAlwaysRespected(t *testing.T) {
	a := twoProcArch()
	g, _, _ := condGraph(t, a, 1)
	paths, _ := g.AlternativePaths(0)
	for _, p := range paths {
		sub := g.Subgraph(p)
		ps, _, err := Schedule(sub, a, Options{})
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		for _, id := range sub.ActiveProcs() {
			e, ok := ps.Entry(sched.ProcKey(id))
			if !ok {
				t.Fatalf("missing entry for %v", id)
			}
			for _, q := range sub.Preds(id) {
				pe, _ := ps.Entry(sched.ProcKey(q))
				if e.Start < pe.End {
					t.Fatalf("process %v starts before predecessor %v finishes", id, q)
				}
			}
		}
	}
}

func TestLockedProcessRespected(t *testing.T) {
	a := twoProcArch()
	g, ids := chainGraph(t, a)
	// Lock B at time 10 (later than its earliest start 3); C must follow.
	locked := map[sched.Key]Lock{sched.ProcKey(ids[1]): {Start: 10}}
	ps, diag, err := Schedule(singlePath(t, g), a, Options{Locked: locked})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !diag.OK() {
		t.Fatalf("unexpected diagnostics: %+v", diag)
	}
	b, _ := ps.Entry(sched.ProcKey(ids[1]))
	cEntry, _ := ps.Entry(sched.ProcKey(ids[2]))
	if b.Start != 10 {
		t.Fatalf("locked process starts at %d, want 10", b.Start)
	}
	if cEntry.Start < b.End {
		t.Fatalf("successor of a locked process must wait for it")
	}
	if ps.Delay != 19 {
		t.Fatalf("delay = %d, want 19", ps.Delay)
	}
}

func TestLockedViolationReported(t *testing.T) {
	a := twoProcArch()
	g, ids := chainGraph(t, a)
	// Locking B before its predecessor ends is infeasible.
	locked := map[sched.Key]Lock{sched.ProcKey(ids[1]): {Start: 1}}
	ps, diag, err := Schedule(singlePath(t, g), a, Options{Locked: locked})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(diag.LockViolations) != 1 {
		t.Fatalf("expected one lock violation, got %+v", diag)
	}
	// The process must still be scheduled after its predecessor, never at
	// the infeasible locked time.
	b, _ := ps.Entry(sched.ProcKey(ids[1]))
	aEnd, _ := ps.Entry(sched.ProcKey(ids[0]))
	if b.Start < aEnd.End {
		t.Fatalf("violating lock must fall back to a feasible start: B=%d, A ends at %d", b.Start, aEnd.End)
	}
}

func TestUnlockedProcessesScheduleAroundLocks(t *testing.T) {
	a := twoProcArch()
	pe1 := a.Processors()[0]
	g := cpg.New("around")
	x := g.AddProcess("X", 2, pe1)
	y := g.AddProcess("Y", 3, pe1)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// Lock Y to start at 1; X (unlocked, same processor) must not overlap it.
	locked := map[sched.Key]Lock{sched.ProcKey(y): {Start: 1}}
	ps, _, err := Schedule(singlePath(t, g), a, Options{Locked: locked})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	ey, _ := ps.Entry(sched.ProcKey(y))
	if ey.Start != 1 {
		t.Fatalf("locked start moved to %d", ey.Start)
	}
	if ex.Start < ey.End && ex.End > ey.Start {
		t.Fatalf("unlocked process overlaps the locked reservation: %v vs %v", ex, ey)
	}
}

func TestFixedOrderPriorityKeepsRelativeOrder(t *testing.T) {
	a := twoProcArch()
	pe1 := a.Processors()[0]
	g := cpg.New("order")
	x := g.AddProcess("X", 2, pe1)
	y := g.AddProcess("Y", 2, pe1)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	sub := singlePath(t, g)
	// With the fixed order "Y before X" the scheduler must start Y first
	// even though the default tie-break would pick X.
	order := map[sched.Key]int64{sched.ProcKey(y): 0, sched.ProcKey(x): 5}
	ps, _, err := Schedule(sub, a, Options{Priority: PriorityFixedOrder, Order: order})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	ey, _ := ps.Entry(sched.ProcKey(y))
	if !(ey.Start == 0 && ex.Start == 2) {
		t.Fatalf("fixed order not respected: X=%v Y=%v", ex, ey)
	}
}

func TestCriticalPathPriorityPicksLongChainFirst(t *testing.T) {
	a := twoProcArch()
	pe1, pe2 := a.Processors()[0], a.Processors()[1]
	g := cpg.New("cp")
	// Two chains compete for pe1's first slot: A(2)->B(9) on pe2 and C(2).
	// A has the longer remaining path and must be scheduled first.
	aProc := g.AddProcess("A", 2, pe1)
	b := g.AddProcess("B", 9, pe2)
	cProc := g.AddProcess("C", 2, pe1)
	g.AddEdge(aProc, b)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{Priority: PriorityCriticalPath})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ea, _ := ps.Entry(sched.ProcKey(aProc))
	ec, _ := ps.Entry(sched.ProcKey(cProc))
	if ea.Start != 0 || ec.Start != 2 {
		t.Fatalf("critical path priority violated: A=%v C=%v", ea, ec)
	}
	if ps.Delay != 11 {
		t.Fatalf("delay = %d, want 11", ps.Delay)
	}
}

func TestProcessorSpeedScaling(t *testing.T) {
	a := arch.New()
	slow := a.AddProcessor("slow", 1)
	fast := a.AddProcessor("fast", 2)
	a.AddBus("bus", true)
	g := cpg.New("speed")
	x := g.AddProcess("X", 10, slow)
	y := g.AddProcess("Y", 10, fast)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	ps, _, err := Schedule(singlePath(t, g), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	ey, _ := ps.Entry(sched.ProcKey(y))
	if ex.Duration() != 10 || ey.Duration() != 5 {
		t.Fatalf("speed scaling wrong: slow=%d fast=%d", ex.Duration(), ey.Duration())
	}
}

func TestScheduleAllPathsDeltaM(t *testing.T) {
	a := twoProcArch()
	g, _, _ := condGraph(t, a, 2)
	paths, _ := g.AlternativePaths(0)
	schedules, deltaM, err := ScheduleAllPaths(g, a, paths, Options{})
	if err != nil {
		t.Fatalf("ScheduleAllPaths: %v", err)
	}
	if len(schedules) != len(paths) {
		t.Fatalf("got %d schedules for %d paths", len(schedules), len(paths))
	}
	var max int64
	for _, s := range schedules {
		if s.Delay > max {
			max = s.Delay
		}
	}
	if deltaM != max {
		t.Fatalf("δM = %d, want %d", deltaM, max)
	}
	if deltaM <= 0 {
		t.Fatalf("δM must be positive")
	}
}

func TestScheduleNilInputs(t *testing.T) {
	if _, _, err := Schedule(nil, nil, Options{}); err == nil {
		t.Fatalf("nil inputs must be rejected")
	}
}

func TestSingleProcessorNoBroadcastNeeded(t *testing.T) {
	a := arch.New()
	pe := a.AddProcessor("pe", 1)
	g := cpg.New("single")
	d := g.AddProcess("D", 2, pe)
	x := g.AddProcess("X", 3, pe)
	y := g.AddProcess("Y", 4, pe)
	c := g.AddCondition("C", d)
	g.AddCondEdge(d, x, c, true)
	g.AddCondEdge(d, y, c, false)
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	label := cond.MustCube(cond.Lit{Cond: c, Val: true})
	ps, _, err := Schedule(g.SubgraphFor(label), a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ct, ok := ps.Cond(c)
	if !ok {
		t.Fatalf("condition timing missing")
	}
	if ct.Bus != arch.NoPE {
		t.Fatalf("single-processor systems must not broadcast, bus=%v", ct.Bus)
	}
	ex, _ := ps.Entry(sched.ProcKey(x))
	if ex.Start != 2 {
		t.Fatalf("guarded process should start right after the decision, got %d", ex.Start)
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityCriticalPath.String() != "critical-path" || PriorityFixedOrder.String() != "fixed-order" {
		t.Fatalf("priority names wrong")
	}
	if Priority(9).String() == "" {
		t.Fatalf("unknown priority must render something")
	}
}
