package listsched

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/gen"
	"repro/internal/sched"
)

func TestStrategyRegistryBuiltins(t *testing.T) {
	names := StrategyNames()
	want := []string{"critical-path", "tabu", "urgency"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("StrategyNames() = %v, want %v (sorted)", names, want)
	}
	for _, name := range names {
		s, ok := LookupStrategy(name)
		if !ok {
			t.Fatalf("LookupStrategy(%q) not found", name)
		}
		if s.Name() != name {
			t.Fatalf("strategy registered under %q reports name %q", name, s.Name())
		}
		if s.Describe() == "" {
			t.Fatalf("strategy %q has no description", name)
		}
	}
	if _, ok := LookupStrategy(DefaultStrategy); !ok {
		t.Fatalf("default strategy %q not registered", DefaultStrategy)
	}
	if _, ok := LookupStrategy("no-such-strategy"); ok {
		t.Fatalf("LookupStrategy must miss on unknown names")
	}
}

func TestRegisterStrategyRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("RegisterStrategy(%s) must panic", what)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() {
		RegisterStrategy(priorityStrategy{name: DefaultStrategy, desc: "dup", prio: PriorityCriticalPath})
	})
	mustPanic("empty name", func() {
		RegisterStrategy(priorityStrategy{name: "", desc: "anon", prio: PriorityCriticalPath})
	})
}

func TestPriorityUrgencyString(t *testing.T) {
	if got := PriorityUrgency.String(); got != "urgency" {
		t.Fatalf("PriorityUrgency.String() = %q, want %q", got, "urgency")
	}
}

// strategyInstance generates a mid-sized instance with conditions, so every
// strategy exercises broadcasts and the knowledge constraint.
func strategyInstance(t testing.TB, seed int64) *gen.Instance {
	t.Helper()
	inst, err := gen.Generate(gen.Config{
		Seed: seed, Nodes: 40, TargetPaths: 6, Processors: 3, Hardware: 1, Buses: 2,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return inst
}

// TestStrategiesProduceValidSchedules runs every registered strategy over
// every alternative path of generated instances: the schedules must be
// complete (one entry per active real process), diagnostics-clean, and the
// improvement strategy must never be worse than the critical-path baseline
// on any individual path.
func TestStrategiesProduceValidSchedules(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inst := strategyInstance(t, seed)
		paths, err := inst.Graph.AlternativePaths(0)
		if err != nil {
			t.Fatalf("AlternativePaths: %v", err)
		}
		baseline := make([]int64, len(paths))
		sc := NewScratch()
		for i, p := range paths {
			ps, diag, err := sc.Schedule(inst.Graph.Subgraph(p), inst.Arch, Options{Priority: PriorityCriticalPath})
			if err != nil {
				t.Fatalf("baseline path %d: %v", i, err)
			}
			if !diag.OK() {
				t.Fatalf("baseline path %d diagnostics: %+v", i, diag)
			}
			baseline[i] = ps.Delay
		}
		for _, name := range StrategyNames() {
			strat, _ := LookupStrategy(name)
			ssc := NewScratch()
			for i, p := range paths {
				sub := inst.Graph.Subgraph(p)
				ps, diag, err := strat.SchedulePath(ssc, sub, inst.Arch, StrategyParams{})
				if err != nil {
					t.Fatalf("strategy %s path %d: %v", name, i, err)
				}
				if !diag.OK() {
					t.Fatalf("strategy %s path %d diagnostics: %+v", name, i, diag)
				}
				for _, id := range sub.ActiveProcs() {
					if _, ok := ps.Entry(sched.ProcKey(id)); !ok {
						t.Fatalf("strategy %s path %d: missing entry for process %d", name, i, id)
					}
				}
				if name == "tabu" && ps.Delay > baseline[i] {
					t.Fatalf("seed %d path %d: tabu delay %d worse than critical-path %d",
						seed, i, ps.Delay, baseline[i])
				}
			}
		}
	}
}

// broadcastBoundGraph builds the canonical scenario where the urgency
// priority pays off: on pe1 a disjunction process D (exec 9, decides C) and
// an independent process X (exec 12) compete, C gates a short remote chain
// on pe2, and the broadcast time is large (τ0 = 10). The plain critical
// path of D (9+1+1 = 11) is shorter than X (12), so the critical-path
// priority runs X first and serializes D behind it — pushing the broadcast,
// and with it the whole remote chain, late. The urgency priority adds τ0 to
// D's chain (21 > 12) and runs D first.
func broadcastBoundGraph(t *testing.T) (*cpg.Graph, *arch.Architecture, cond.Cond) {
	t.Helper()
	a := arch.New()
	pe1 := a.AddProcessor("pe1", 1)
	pe2 := a.AddProcessor("pe2", 1)
	a.AddBus("bus", true)
	a.SetCondTime(10)
	g := cpg.New("broadcast-bound")
	d := g.AddProcess("D", 9, pe1)
	x := g.AddProcess("X", 12, pe1)
	y := g.AddProcess("Y", 1, pe2)
	f := g.AddProcess("F", 1, pe1)
	j := g.AddProcess("J", 1, pe2)
	c := g.AddCondition("C", d)
	g.AddCondEdge(d, y, c, true)
	g.AddCondEdge(d, f, c, false)
	g.AddEdge(y, j)
	g.AddEdge(f, j)
	_ = x
	if err := g.Finalize(a); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g, a, c
}

// TestUrgencyBeatsCriticalPathOnBroadcastBoundGraph pins the quality
// mechanism of the urgency and tabu strategies: on the broadcast-bound graph
// the critical-path priority yields delay 33 on the C=true path, urgency
// yields 21, and tabu recovers the same improvement from the critical-path
// baseline.
func TestUrgencyBeatsCriticalPathOnBroadcastBoundGraph(t *testing.T) {
	g, a, c := broadcastBoundGraph(t)
	sub := g.SubgraphFor(cond.MustCube(cond.Lit{Cond: c, Val: true}))

	cp, diag, err := Schedule(sub, a, Options{Priority: PriorityCriticalPath})
	if err != nil || !diag.OK() {
		t.Fatalf("critical-path: %v %+v", err, diag)
	}
	ur, diag, err := Schedule(sub, a, Options{Priority: PriorityUrgency})
	if err != nil || !diag.OK() {
		t.Fatalf("urgency: %v %+v", err, diag)
	}
	if cp.Delay != 33 || ur.Delay != 21 {
		t.Fatalf("delays critical-path/urgency = %d/%d, want 33/21", cp.Delay, ur.Delay)
	}
	tabu, _ := LookupStrategy("tabu")
	tb, _, err := tabu.SchedulePath(NewScratch(), sub, a, StrategyParams{})
	if err != nil {
		t.Fatalf("tabu: %v", err)
	}
	if tb.Delay > ur.Delay {
		t.Fatalf("tabu delay %d did not recover the urgency improvement %d", tb.Delay, ur.Delay)
	}
}

// TestTabuDeterministic pins reproducibility: two independent runs (fresh
// scratches) must produce identical schedules, the property the differential
// worker-count test and the memo cache both rest on.
func TestTabuDeterministic(t *testing.T) {
	inst := strategyInstance(t, 7)
	paths, err := inst.Graph.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	tabu, _ := LookupStrategy("tabu")
	for i, p := range paths {
		sub := inst.Graph.Subgraph(p)
		first, _, err := tabu.SchedulePath(NewScratch(), sub, inst.Arch, StrategyParams{})
		if err != nil {
			t.Fatalf("first run path %d: %v", i, err)
		}
		second, _, err := tabu.SchedulePath(NewScratch(), sub, inst.Arch, StrategyParams{})
		if err != nil {
			t.Fatalf("second run path %d: %v", i, err)
		}
		if !reflect.DeepEqual(first.Entries(), second.Entries()) {
			t.Fatalf("path %d: tabu schedules differ between identical runs", i)
		}
	}
}

// TestTabuParamBounds pins the knobs: negative iterations return the
// baseline unchanged, and a tiny wall-clock budget still yields a schedule
// no worse than the baseline.
func TestTabuParamBounds(t *testing.T) {
	inst := strategyInstance(t, 9)
	paths, err := inst.Graph.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	sub := inst.Graph.Subgraph(paths[0])
	base, _, err := Schedule(sub, inst.Arch, Options{Priority: PriorityCriticalPath})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	tabu, _ := LookupStrategy("tabu")

	off, _, err := tabu.SchedulePath(NewScratch(), sub, inst.Arch, StrategyParams{TabuIterations: -1})
	if err != nil {
		t.Fatalf("disabled tabu: %v", err)
	}
	if !reflect.DeepEqual(off.Entries(), base.Entries()) {
		t.Fatalf("TabuIterations < 0 must return the critical-path baseline unchanged")
	}

	budgeted, _, err := tabu.SchedulePath(NewScratch(), sub, inst.Arch, StrategyParams{Budget: time.Nanosecond})
	if err != nil {
		t.Fatalf("budgeted tabu: %v", err)
	}
	if budgeted.Delay > base.Delay {
		t.Fatalf("budgeted tabu delay %d worse than baseline %d", budgeted.Delay, base.Delay)
	}
}
