// Package listsched implements the non-preemptive list scheduler used to
// schedule one alternative path of a conditional process graph on the target
// architecture (the algorithm referred to as [5] in the paper).
//
// The scheduler handles:
//
//   - fixed process-to-processing-element mapping (the mapping function M);
//   - sequential resources (programmable processors, buses, memory modules)
//     and parallel hardware processors;
//   - communication processes occupying buses;
//   - condition broadcasts: after a disjunction process terminates, the value
//     of the condition is broadcast during τ0 time units on the first
//     all-connecting bus that becomes available;
//   - the knowledge constraint of requirement 4: a process whose guard
//     depends on a condition cannot start on a processing element before the
//     condition value is known there;
//   - locked activation times, used by the merging algorithm to adjust the
//     schedule of a path to activation times already fixed in the schedule
//     table (rule 3 of section 5.1), and
//   - two priority functions: longest remaining (critical) path, used for the
//     optimal schedule of each path, and fixed order, used to keep the
//     relative priorities of unlocked processes during adjustment.
//
// The scheduler runs in O(n log n): the ready set is an indexed priority heap
// keyed on (priority, process identifier) that is updated incrementally as
// indegrees drop, and all per-process state lives in dense slices indexed by
// ProcID. A Scratch value makes the buffers reusable across runs, so callers
// that schedule many paths (the table generator, the sweep) stay
// (near-)allocation-free in the inner loop.
package listsched

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/sched"
)

// Priority selects the priority function of the list scheduler.
type Priority int

const (
	// PriorityCriticalPath picks, among the ready processes, the one with
	// the longest remaining execution-time chain to the sink.
	PriorityCriticalPath Priority = iota
	// PriorityFixedOrder picks ready processes in ascending order of a
	// caller-supplied value (typically the start times of a previously
	// computed schedule), which keeps relative priorities during schedule
	// adjustment.
	PriorityFixedOrder
	// PriorityUrgency is the partial-critical-path priority: the remaining
	// chain of every process is extended with the condition broadcast time
	// τ0 for each condition decided along it, so chains that gate other
	// processing elements through condition knowledge (requirement 4) are
	// scheduled more urgently. Communication latency is already part of the
	// chain because communication processes are explicit graph nodes.
	PriorityUrgency
)

// String returns the name of the priority function.
func (p Priority) String() string {
	switch p {
	case PriorityCriticalPath:
		return "critical-path"
	case PriorityFixedOrder:
		return "fixed-order"
	case PriorityUrgency:
		return "urgency"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Lock fixes the activation time of an activity. For condition broadcasts the
// bus carrying the broadcast is fixed too.
type Lock struct {
	Start int64
	Bus   arch.PEID
}

// Options configures one scheduling run.
type Options struct {
	Priority Priority
	// Order supplies the fixed-order priority values (smaller first). It is
	// ignored by PriorityCriticalPath.
	Order map[sched.Key]int64
	// Locked fixes activation times of activities; locked activities are
	// placed exactly at their lock time and other activities are scheduled
	// around them.
	Locked map[sched.Key]Lock
}

// LockViolation records a locked activation time that is not feasible with
// respect to data dependencies (it should not happen for tables produced by
// the merging algorithm; see Theorem 1 of the paper).
type LockViolation struct {
	Key      sched.Key
	Locked   int64
	Earliest int64
}

// Diagnostics reports anomalies of a scheduling run.
type Diagnostics struct {
	LockViolations   []LockViolation
	ResourceOverlaps []arch.PEID
}

// OK reports whether the run produced no diagnostics.
func (d *Diagnostics) OK() bool {
	return len(d.LockViolations) == 0 && len(d.ResourceOverlaps) == 0
}

// Scratch holds the dense per-process state and the ready heap of one
// scheduling run. The buffers are reused across runs, so a caller scheduling
// many paths (or rescheduling one path many times, like the merging
// algorithm) allocates only the resulting PathSchedule per run. A Scratch is
// not safe for concurrent use; give each worker goroutine its own.
//
// The zero value is ready to use.
type Scratch struct {
	cp        []int64     // critical-path length to the sink, by ProcID
	prio      []float64   // priority value (smaller schedules first), by ProcID
	remaining []int32     // unscheduled active predecessors, by ProcID
	scheduled []bool      // already placed, by ProcID
	endOf     []int64     // end time of placed processes, by ProcID
	guardCube []cond.Cube // guard cube satisfied by the path, by ProcID
	heap      []cpg.ProcID
	timelines []sched.Timeline // per sequential resource, by PEID

	// deciders[p] lists the conditions decided by process p on this path;
	// decTouched tracks which slots are dirty so reset stays O(active).
	deciders   [][]*cpg.CondDef
	decTouched []cpg.ProcID
}

// NewScratch returns an empty scratch. Buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// reset prepares the scratch for a graph with n processes on an architecture
// with pes processing elements, clearing only what the previous run dirtied.
func (sc *Scratch) reset(n, pes int) {
	// Clear the dirty decider slots before any resizing: decTouched holds
	// process identifiers of the previous graph, which may exceed n.
	for _, p := range sc.decTouched {
		sc.deciders[p] = sc.deciders[p][:0]
	}
	sc.decTouched = sc.decTouched[:0]
	if cap(sc.cp) < n {
		sc.cp = make([]int64, n)
		sc.prio = make([]float64, n)
		sc.remaining = make([]int32, n)
		sc.scheduled = make([]bool, n)
		sc.endOf = make([]int64, n)
		sc.guardCube = make([]cond.Cube, n)
		sc.deciders = make([][]*cpg.CondDef, n)
	}
	sc.cp = sc.cp[:n]
	sc.prio = sc.prio[:n]
	sc.remaining = sc.remaining[:n]
	sc.scheduled = sc.scheduled[:n]
	sc.endOf = sc.endOf[:n]
	sc.guardCube = sc.guardCube[:n]
	sc.deciders = sc.deciders[:n]
	for i := range sc.scheduled {
		sc.scheduled[i] = false
		sc.remaining[i] = 0
		sc.endOf[i] = 0
	}
	sc.heap = sc.heap[:0]
	if cap(sc.timelines) < pes {
		sc.timelines = make([]sched.Timeline, pes)
	}
	sc.timelines = sc.timelines[:pes]
	for i := range sc.timelines {
		sc.timelines[i].Reset()
	}
}

// less orders the ready heap: smaller priority value first, ties by process
// identifier. This reproduces exactly the pick of the reference
// implementation, which sorted the ready list by (priority, ProcID).
func (sc *Scratch) less(a, b cpg.ProcID) bool {
	if sc.prio[a] != sc.prio[b] {
		return sc.prio[a] < sc.prio[b]
	}
	return a < b
}

// push adds a ready process to the heap.
func (sc *Scratch) push(p cpg.ProcID) {
	sc.heap = append(sc.heap, p)
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sc.less(sc.heap[i], sc.heap[parent]) {
			break
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

// pop removes and returns the highest-priority ready process.
func (sc *Scratch) pop() cpg.ProcID {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.heap = h[:last]
	h = sc.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && sc.less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && sc.less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Schedule builds a schedule for the active subgraph sub on architecture a.
// It is shorthand for NewScratch().Schedule; callers scheduling many paths
// should keep a Scratch per goroutine and reuse it.
func Schedule(sub *cpg.Subgraph, a *arch.Architecture, opt Options) (*sched.PathSchedule, *Diagnostics, error) {
	var sc Scratch
	return sc.Schedule(sub, a, opt)
}

// Schedule builds a schedule for the active subgraph sub on architecture a,
// reusing the scratch buffers.
func (sc *Scratch) Schedule(sub *cpg.Subgraph, a *arch.Architecture, opt Options) (*sched.PathSchedule, *Diagnostics, error) {
	if sub == nil || a == nil {
		return nil, nil, errors.New("listsched: nil subgraph or architecture")
	}
	g := sub.G
	diag := &Diagnostics{}
	active := sub.ActiveProcs()
	ps := sched.NewPathScheduleSized(sub.Label, len(active))
	if len(active) == 0 {
		return ps, diag, nil
	}
	sc.reset(g.NumProcs(), a.NumPEs())

	exec := func(p cpg.ProcID) int64 {
		return a.EffectiveExec(g.Process(p).Exec, g.Process(p).PE)
	}

	// Deciders of the conditions decided on this path (needed both by the
	// urgency priority below and by the broadcast scheduling later).
	for _, c := range sub.DecidedConds() {
		def := g.Condition(c)
		if len(sc.deciders[def.Decider]) == 0 {
			sc.decTouched = append(sc.decTouched, def.Decider)
		}
		sc.deciders[def.Decider] = append(sc.deciders[def.Decider], def)
	}

	// Priority values (smaller is picked first, matching the reference
	// implementation's ascending sort of the ready list).
	execPrio := exec
	if opt.Priority == PriorityUrgency {
		// The chain below a disjunction process is gated by the broadcast of
		// the condition it decides: weight it with τ0 per decided condition.
		execPrio = func(p cpg.ProcID) int64 {
			return exec(p) + a.CondTime*int64(len(sc.deciders[p]))
		}
	}
	sc.cp = sub.CriticalPathLengthsInto(sc.cp, execPrio)
	for _, p := range active {
		switch opt.Priority {
		case PriorityFixedOrder:
			if v, ok := opt.Order[sched.ProcKey(p)]; ok {
				sc.prio[p] = float64(v)
			} else {
				// Fall back to critical path (negated so longer paths come
				// first) for activities absent from the reference order.
				sc.prio[p] = math.MaxFloat64/2 - float64(sc.cp[p])
			}
		default:
			// Larger critical path means higher priority; invert so that
			// smaller values are picked first uniformly.
			sc.prio[p] = -float64(sc.cp[p])
		}
	}

	// Per-sequential-resource timelines; locked activities reserve upfront.
	timeline := func(pe arch.PEID) *sched.Timeline { return &sc.timelines[pe] }
	for key, lock := range opt.Locked {
		if key.IsCond {
			if a.Valid(lock.Bus) && a.IsSequential(lock.Bus) {
				timeline(lock.Bus).Reserve(lock.Start, a.CondTime)
			}
			continue
		}
		if !sub.Active(key.Proc) {
			continue
		}
		p := g.Process(key.Proc)
		if p == nil {
			continue
		}
		if a.IsSequential(p.PE) {
			timeline(p.PE).Reserve(lock.Start, exec(p.ID))
		}
	}

	broadcastBuses := a.BroadcastBuses()
	needBroadcast := len(a.ComputePEs()) > 1 && len(broadcastBuses) > 0

	// guardCube[p] is the cube of the process guard satisfied by this path;
	// the process may not start on its processing element before every
	// condition of the cube is known there.
	for _, p := range active {
		if c, ok := g.Guard(p).SatisfiedCube(sub.Label); ok {
			sc.guardCube[p] = c
		} else {
			sc.guardCube[p] = cond.True()
		}
	}

	// scheduleBroadcast places the broadcast of condition def after the
	// decider terminated at decEnd.
	scheduleBroadcast := func(def *cpg.CondDef, decEnd int64, deciderPE arch.PEID) {
		value, _ := sub.Label.Value(def.ID)
		key := sched.CondKey(def.ID)
		if lock, ok := opt.Locked[key]; ok {
			bus := lock.Bus
			end := lock.Start + a.CondTime
			if !a.Valid(bus) {
				end = lock.Start
			}
			ps.Set(sched.Entry{Key: key, Start: lock.Start, End: end, PE: bus})
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: lock.Start, BroadcastEnd: end, Bus: bus,
			})
			if lock.Start < decEnd {
				diag.LockViolations = append(diag.LockViolations, LockViolation{Key: key, Locked: lock.Start, Earliest: decEnd})
			}
			return
		}
		if !needBroadcast {
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: decEnd, BroadcastEnd: decEnd, Bus: arch.NoPE,
			})
			return
		}
		bestBus := broadcastBuses[0]
		bestStart := int64(math.MaxInt64)
		for _, b := range broadcastBuses {
			s := timeline(b).EarliestFit(decEnd, a.CondTime)
			if s < bestStart {
				bestStart = s
				bestBus = b
			}
		}
		timeline(bestBus).Reserve(bestStart, a.CondTime)
		end := bestStart + a.CondTime
		ps.Set(sched.Entry{Key: key, Start: bestStart, End: end, PE: bestBus})
		ps.SetCond(sched.CondTiming{
			Cond: def.ID, Value: value,
			DecidedAt: decEnd, DeciderPE: deciderPE,
			BroadcastStart: bestStart, BroadcastEnd: end, Bus: bestBus,
		})
	}

	// List scheduling: repeatedly pick the highest-priority process among
	// those whose active predecessors are all scheduled. The ready set is a
	// min-heap on (priority, ProcID), updated as indegrees drop.
	for _, p := range active {
		sc.remaining[p] = int32(len(sub.Preds(p)))
		if sc.remaining[p] == 0 {
			sc.push(p)
		}
	}

	for count := 0; count < len(active); count++ {
		if len(sc.heap) == 0 {
			return nil, diag, fmt.Errorf("listsched: no ready process after scheduling %d of %d (cyclic or inconsistent subgraph)", count, len(active))
		}
		p := sc.pop()
		proc := g.Process(p)
		dur := exec(p)

		// Earliest start from data dependencies.
		est := int64(0)
		for _, q := range sub.Preds(p) {
			if sc.endOf[q] > est {
				est = sc.endOf[q]
			}
		}
		// Knowledge constraint (requirement 4): the guard's conditions must
		// be known on the processing element executing the process.
		if proc.PE != arch.NoPE {
			for m := sc.guardCube[p].Mask(); m != 0; m &= m - 1 {
				x := cond.Cond(bits.TrailingZeros64(m))
				if at, ok := ps.KnownTime(x, proc.PE); ok && at > est {
					est = at
				}
			}
		}

		var start int64
		if lock, locked := opt.Locked[sched.ProcKey(p)]; locked {
			start = lock.Start
			if est > start {
				diag.LockViolations = append(diag.LockViolations, LockViolation{Key: sched.ProcKey(p), Locked: start, Earliest: est})
				start = est
			}
		} else if a.IsSequential(proc.PE) {
			start = timeline(proc.PE).ReserveEarliest(est, dur)
		} else {
			start = est
		}
		end := start + dur
		ps.Set(sched.Entry{Key: sched.ProcKey(p), Start: start, End: end, PE: proc.PE})
		sc.scheduled[p] = true
		sc.endOf[p] = end

		// Broadcast the conditions this process decides.
		for _, def := range sc.deciders[p] {
			scheduleBroadcast(def, end, proc.PE)
		}

		for _, q := range sub.Succs(p) {
			sc.remaining[q]--
			if sc.remaining[q] == 0 && !sc.scheduled[q] {
				sc.push(q)
			}
		}
	}

	// Delay is the activation time of the sink.
	if e, ok := ps.Entry(sched.ProcKey(g.Sink())); ok {
		ps.Delay = e.Start
	} else {
		var max int64
		for _, e := range ps.Entries() {
			if e.End > max {
				max = e.End
			}
		}
		ps.Delay = max
	}

	for pe := range sc.timelines {
		if sc.timelines[pe].Overlaps() {
			diag.ResourceOverlaps = append(diag.ResourceOverlaps, arch.PEID(pe))
		}
	}
	return ps, diag, nil
}

// ScheduleAllPaths schedules every alternative path of the graph with the
// critical-path priority and returns the schedules in path order together
// with δM, the largest of the individual path delays. A single scratch is
// reused across the paths.
func ScheduleAllPaths(g *cpg.Graph, a *arch.Architecture, paths []*cpg.Path, opt Options) ([]*sched.PathSchedule, int64, error) {
	var deltaM int64
	var sc Scratch
	out := make([]*sched.PathSchedule, 0, len(paths))
	for _, p := range paths {
		sub := g.Subgraph(p)
		ps, _, err := sc.Schedule(sub, a, opt)
		if err != nil {
			return nil, 0, fmt.Errorf("listsched: path %s: %w", p.Label, err)
		}
		if ps.Delay > deltaM {
			deltaM = ps.Delay
		}
		out = append(out, ps)
	}
	return out, deltaM, nil
}
