// Package listsched implements the non-preemptive list scheduler used to
// schedule one alternative path of a conditional process graph on the target
// architecture (the algorithm referred to as [5] in the paper).
//
// The scheduler handles:
//
//   - fixed process-to-processing-element mapping (the mapping function M);
//   - sequential resources (programmable processors, buses, memory modules)
//     and parallel hardware processors;
//   - communication processes occupying buses;
//   - condition broadcasts: after a disjunction process terminates, the value
//     of the condition is broadcast during τ0 time units on the first
//     all-connecting bus that becomes available;
//   - the knowledge constraint of requirement 4: a process whose guard
//     depends on a condition cannot start on a processing element before the
//     condition value is known there;
//   - locked activation times, used by the merging algorithm to adjust the
//     schedule of a path to activation times already fixed in the schedule
//     table (rule 3 of section 5.1), and
//   - two priority functions: longest remaining (critical) path, used for the
//     optimal schedule of each path, and fixed order, used to keep the
//     relative priorities of unlocked processes during adjustment.
package listsched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/cond"
	"repro/internal/cpg"
	"repro/internal/sched"
)

// Priority selects the priority function of the list scheduler.
type Priority int

const (
	// PriorityCriticalPath picks, among the ready processes, the one with
	// the longest remaining execution-time chain to the sink.
	PriorityCriticalPath Priority = iota
	// PriorityFixedOrder picks ready processes in ascending order of a
	// caller-supplied value (typically the start times of a previously
	// computed schedule), which keeps relative priorities during schedule
	// adjustment.
	PriorityFixedOrder
)

// String returns the name of the priority function.
func (p Priority) String() string {
	switch p {
	case PriorityCriticalPath:
		return "critical-path"
	case PriorityFixedOrder:
		return "fixed-order"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Lock fixes the activation time of an activity. For condition broadcasts the
// bus carrying the broadcast is fixed too.
type Lock struct {
	Start int64
	Bus   arch.PEID
}

// Options configures one scheduling run.
type Options struct {
	Priority Priority
	// Order supplies the fixed-order priority values (smaller first). It is
	// ignored by PriorityCriticalPath.
	Order map[sched.Key]int64
	// Locked fixes activation times of activities; locked activities are
	// placed exactly at their lock time and other activities are scheduled
	// around them.
	Locked map[sched.Key]Lock
}

// LockViolation records a locked activation time that is not feasible with
// respect to data dependencies (it should not happen for tables produced by
// the merging algorithm; see Theorem 1 of the paper).
type LockViolation struct {
	Key      sched.Key
	Locked   int64
	Earliest int64
}

// Diagnostics reports anomalies of a scheduling run.
type Diagnostics struct {
	LockViolations   []LockViolation
	ResourceOverlaps []arch.PEID
}

// OK reports whether the run produced no diagnostics.
func (d *Diagnostics) OK() bool {
	return len(d.LockViolations) == 0 && len(d.ResourceOverlaps) == 0
}

// Schedule builds a schedule for the active subgraph sub on architecture a.
func Schedule(sub *cpg.Subgraph, a *arch.Architecture, opt Options) (*sched.PathSchedule, *Diagnostics, error) {
	if sub == nil || a == nil {
		return nil, nil, errors.New("listsched: nil subgraph or architecture")
	}
	g := sub.G
	diag := &Diagnostics{}
	ps := sched.NewPathSchedule(sub.Label)

	active := sub.ActiveProcs()
	if len(active) == 0 {
		return ps, diag, nil
	}

	exec := func(p cpg.ProcID) int64 {
		return a.EffectiveExec(g.Process(p).Exec, g.Process(p).PE)
	}

	// Priority values.
	cp := sub.CriticalPathLengths(exec)
	prio := func(p cpg.ProcID) float64 {
		switch opt.Priority {
		case PriorityFixedOrder:
			if v, ok := opt.Order[sched.ProcKey(p)]; ok {
				return float64(v)
			}
			// Fall back to critical path (negated so longer paths come
			// first) for activities absent from the reference order.
			return math.MaxFloat64/2 - float64(cp[p])
		default:
			// Larger critical path means higher priority; invert so that
			// smaller values are picked first uniformly.
			return -float64(cp[p])
		}
	}

	// Per-sequential-resource timelines; locked activities reserve upfront.
	timelines := map[arch.PEID]*sched.Timeline{}
	timeline := func(pe arch.PEID) *sched.Timeline {
		tl, ok := timelines[pe]
		if !ok {
			tl = &sched.Timeline{}
			timelines[pe] = tl
		}
		return tl
	}
	for key, lock := range opt.Locked {
		if key.IsCond {
			if a.Valid(lock.Bus) && a.IsSequential(lock.Bus) {
				timeline(lock.Bus).Reserve(lock.Start, a.CondTime)
			}
			continue
		}
		if !sub.Active(key.Proc) {
			continue
		}
		p := g.Process(key.Proc)
		if p == nil {
			continue
		}
		if a.IsSequential(p.PE) {
			timeline(p.PE).Reserve(lock.Start, exec(p.ID))
		}
	}

	// Deciders of the conditions decided on this path.
	deciders := map[cpg.ProcID][]*cpg.CondDef{}
	for _, c := range sub.DecidedConds() {
		def := g.Condition(c)
		deciders[def.Decider] = append(deciders[def.Decider], def)
	}
	broadcastBuses := a.BroadcastBuses()
	needBroadcast := len(a.ComputePEs()) > 1 && len(broadcastBuses) > 0

	// guardCube[p] is the cube of the process guard satisfied by this path;
	// the process may not start on its processing element before every
	// condition of the cube is known there.
	guardCube := map[cpg.ProcID]cond.Cube{}
	for _, p := range active {
		if c, ok := g.Guard(p).SatisfiedCube(sub.Label); ok {
			guardCube[p] = c
		} else {
			guardCube[p] = cond.True()
		}
	}

	// scheduleBroadcast places the broadcast of condition def after the
	// decider terminated at decEnd.
	scheduleBroadcast := func(def *cpg.CondDef, decEnd int64, deciderPE arch.PEID) {
		value, _ := sub.Label.Value(def.ID)
		key := sched.CondKey(def.ID)
		if lock, ok := opt.Locked[key]; ok {
			bus := lock.Bus
			end := lock.Start + a.CondTime
			if !a.Valid(bus) {
				end = lock.Start
			}
			ps.Set(sched.Entry{Key: key, Start: lock.Start, End: end, PE: bus})
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: lock.Start, BroadcastEnd: end, Bus: bus,
			})
			if lock.Start < decEnd {
				diag.LockViolations = append(diag.LockViolations, LockViolation{Key: key, Locked: lock.Start, Earliest: decEnd})
			}
			return
		}
		if !needBroadcast {
			ps.SetCond(sched.CondTiming{
				Cond: def.ID, Value: value,
				DecidedAt: decEnd, DeciderPE: deciderPE,
				BroadcastStart: decEnd, BroadcastEnd: decEnd, Bus: arch.NoPE,
			})
			return
		}
		bestBus := broadcastBuses[0]
		bestStart := int64(math.MaxInt64)
		for _, b := range broadcastBuses {
			s := timeline(b).EarliestFit(decEnd, a.CondTime)
			if s < bestStart {
				bestStart = s
				bestBus = b
			}
		}
		timeline(bestBus).Reserve(bestStart, a.CondTime)
		end := bestStart + a.CondTime
		ps.Set(sched.Entry{Key: key, Start: bestStart, End: end, PE: bestBus})
		ps.SetCond(sched.CondTiming{
			Cond: def.ID, Value: value,
			DecidedAt: decEnd, DeciderPE: deciderPE,
			BroadcastStart: bestStart, BroadcastEnd: end, Bus: bestBus,
		})
	}

	// List scheduling: repeatedly pick the highest-priority process among
	// those whose active predecessors are all scheduled.
	remaining := map[cpg.ProcID]int{}
	scheduled := map[cpg.ProcID]bool{}
	endOf := map[cpg.ProcID]int64{}
	for _, p := range active {
		remaining[p] = len(sub.Preds(p))
	}

	readyList := func() []cpg.ProcID {
		var out []cpg.ProcID
		for _, p := range active {
			if !scheduled[p] && remaining[p] == 0 {
				out = append(out, p)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			pi, pj := prio(out[i]), prio(out[j])
			if pi != pj {
				return pi < pj
			}
			return out[i] < out[j]
		})
		return out
	}

	for count := 0; count < len(active); count++ {
		ready := readyList()
		if len(ready) == 0 {
			return nil, diag, fmt.Errorf("listsched: no ready process after scheduling %d of %d (cyclic or inconsistent subgraph)", count, len(active))
		}
		p := ready[0]
		proc := g.Process(p)
		dur := exec(p)

		// Earliest start from data dependencies.
		est := int64(0)
		for _, q := range sub.Preds(p) {
			if endOf[q] > est {
				est = endOf[q]
			}
		}
		// Knowledge constraint (requirement 4): the guard's conditions must
		// be known on the processing element executing the process.
		if proc.PE != arch.NoPE {
			for _, l := range guardCube[p].Lits() {
				if at, ok := ps.KnownTime(l.Cond, proc.PE); ok && at > est {
					est = at
				}
			}
		}

		var start int64
		if lock, locked := opt.Locked[sched.ProcKey(p)]; locked {
			start = lock.Start
			if est > start {
				diag.LockViolations = append(diag.LockViolations, LockViolation{Key: sched.ProcKey(p), Locked: start, Earliest: est})
				start = est
			}
		} else if a.IsSequential(proc.PE) {
			start = timeline(proc.PE).EarliestFit(est, dur)
			timeline(proc.PE).Reserve(start, dur)
		} else {
			start = est
		}
		end := start + dur
		ps.Set(sched.Entry{Key: sched.ProcKey(p), Start: start, End: end, PE: proc.PE})
		scheduled[p] = true
		endOf[p] = end

		// Broadcast the conditions this process decides.
		for _, def := range deciders[p] {
			scheduleBroadcast(def, end, proc.PE)
		}

		for _, q := range sub.Succs(p) {
			remaining[q]--
		}
	}

	// Delay is the activation time of the sink.
	if e, ok := ps.Entry(sched.ProcKey(g.Sink())); ok {
		ps.Delay = e.Start
	} else {
		var max int64
		for _, e := range ps.Entries() {
			if e.End > max {
				max = e.End
			}
		}
		ps.Delay = max
	}

	for pe, tl := range timelines {
		if tl.Overlaps() {
			diag.ResourceOverlaps = append(diag.ResourceOverlaps, pe)
		}
	}
	sort.Slice(diag.ResourceOverlaps, func(i, j int) bool { return diag.ResourceOverlaps[i] < diag.ResourceOverlaps[j] })
	return ps, diag, nil
}

// ScheduleAllPaths schedules every alternative path of the graph with the
// critical-path priority and returns the schedules in path order together
// with δM, the largest of the individual path delays.
func ScheduleAllPaths(g *cpg.Graph, a *arch.Architecture, paths []*cpg.Path, opt Options) ([]*sched.PathSchedule, int64, error) {
	var deltaM int64
	out := make([]*sched.PathSchedule, 0, len(paths))
	for _, p := range paths {
		sub := g.Subgraph(p)
		ps, _, err := Schedule(sub, a, opt)
		if err != nil {
			return nil, 0, fmt.Errorf("listsched: path %s: %w", p.Label, err)
		}
		if ps.Delay > deltaM {
			deltaM = ps.Delay
		}
		out = append(out, ps)
	}
	return out, deltaM, nil
}
