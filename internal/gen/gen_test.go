package gen

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/cpg"
)

func TestGenerateDefaults(t *testing.T) {
	inst, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if inst.Graph.NumOrdinary() < 60 {
		t.Fatalf("default graph has %d ordinary processes, want >= 60", inst.Graph.NumOrdinary())
	}
	paths, err := inst.Graph.AlternativePaths(0)
	if err != nil {
		t.Fatalf("AlternativePaths: %v", err)
	}
	if len(paths) != 10 {
		t.Fatalf("default graph has %d paths, want 10", len(paths))
	}
}

func TestGenerateTargetPathsExact(t *testing.T) {
	for _, target := range []int{2, 3, 4, 6, 10, 12, 18, 24, 32} {
		inst, err := Generate(Config{Seed: int64(100 + target), Nodes: 60, TargetPaths: target, Processors: 3, Hardware: 1, Buses: 2})
		if err != nil {
			t.Fatalf("Generate(paths=%d): %v", target, err)
		}
		paths, err := inst.Graph.AlternativePaths(0)
		if err != nil {
			t.Fatalf("AlternativePaths: %v", err)
		}
		if len(paths) != target {
			t.Fatalf("generated %d paths, want %d", len(paths), target)
		}
	}
}

func TestGenerateNodeCounts(t *testing.T) {
	for _, nodes := range []int{60, 80, 120} {
		inst, err := Generate(Config{Seed: int64(nodes), Nodes: nodes, TargetPaths: 12, Processors: 4, Hardware: 1, Buses: 2})
		if err != nil {
			t.Fatalf("Generate(nodes=%d): %v", nodes, err)
		}
		if got := inst.Graph.NumOrdinary(); got < nodes {
			t.Fatalf("graph has %d ordinary processes, want >= %d", got, nodes)
		}
		if got := inst.Graph.NumOrdinary(); got > nodes+8 {
			t.Fatalf("graph overshoots the node target badly: %d for target %d", got, nodes)
		}
	}
}

func TestGeneratedGraphsAreValid(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := RandomConfig(r, 60+int(seed%3)*20, []int{10, 12, 18, 24, 32}[seed%5])
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(seed %d): %v", seed, err)
		}
		if err := inst.Arch.Validate(); err != nil {
			t.Fatalf("architecture invalid (seed %d): %v", seed, err)
		}
		if _, err := inst.Graph.ValidatePaths(0); err != nil {
			t.Fatalf("graph invalid (seed %d): %v", seed, err)
		}
	}
}

func TestGenerateDeterministicForSameSeed(t *testing.T) {
	cfg := Config{Seed: 42, Nodes: 60, TargetPaths: 12, Processors: 3, Hardware: 1, Buses: 2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Graph.NumProcs() != b.Graph.NumProcs() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d/%d vs %d/%d",
			a.Graph.NumProcs(), a.Graph.NumEdges(), b.Graph.NumProcs(), b.Graph.NumEdges())
	}
	pa := a.Graph.Procs()
	pb := b.Graph.Procs()
	for i := range pa {
		if pa[i].Exec != pb[i].Exec || pa[i].PE != pb[i].PE || pa[i].Kind != pb[i].Kind {
			t.Fatalf("process %d differs between runs with the same seed", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{Seed: 1, Nodes: 60, TargetPaths: 12})
	b, _ := Generate(Config{Seed: 2, Nodes: 60, TargetPaths: 12})
	same := a.Graph.NumProcs() == b.Graph.NumProcs() && a.Graph.NumEdges() == b.Graph.NumEdges()
	if same {
		// Even with the same sizes the execution times should differ.
		diff := false
		pa, pb := a.Graph.Procs(), b.Graph.Procs()
		for i := range pa {
			if pa[i].Exec != pb[i].Exec {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatalf("different seeds produced identical graphs")
		}
	}
}

func TestArchitectureMatchesConfig(t *testing.T) {
	inst, err := Generate(Config{Seed: 5, Nodes: 60, TargetPaths: 10, Processors: 7, Hardware: 1, Buses: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := len(inst.Arch.Processors()); got != 7 {
		t.Fatalf("processors = %d, want 7", got)
	}
	if got := len(inst.Arch.Hardware()); got != 1 {
		t.Fatalf("hardware = %d, want 1", got)
	}
	if got := len(inst.Arch.Buses()); got != 5 {
		t.Fatalf("buses = %d, want 5", got)
	}
	if got := len(inst.Arch.BroadcastBuses()); got != 1 {
		t.Fatalf("exactly one broadcast bus expected, got %d", got)
	}
}

func TestCommunicationProcessesRespectAssumptions(t *testing.T) {
	inst, err := Generate(Config{Seed: 9, Nodes: 80, TargetPaths: 18, Processors: 4, Hardware: 1, Buses: 3, CondTime: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	comms := 0
	for _, p := range inst.Graph.Procs() {
		if p.Kind != cpg.KindComm {
			continue
		}
		comms++
		if p.Exec < inst.Arch.CondTime {
			t.Fatalf("communication time %d smaller than τ0 %d (violates the paper's assumption)", p.Exec, inst.Arch.CondTime)
		}
		pe := inst.Arch.PE(p.PE)
		if pe == nil || pe.Kind != arch.KindBus {
			t.Fatalf("communication process mapped to %v, want a bus", pe)
		}
	}
	if comms == 0 {
		t.Fatalf("a multi-processor instance should contain communication processes")
	}
}

func TestExponentialDistribution(t *testing.T) {
	inst, err := Generate(Config{Seed: 11, Nodes: 100, TargetPaths: 10, Processors: 3, Hardware: 1, Buses: 1, ExecDist: DistExponential, ExecMean: 20})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var sum, n int64
	for _, p := range inst.Graph.Procs() {
		if p.Kind != cpg.KindOrdinary {
			continue
		}
		if p.Exec < 1 {
			t.Fatalf("exponential execution times must be at least 1")
		}
		sum += p.Exec
		n++
	}
	mean := float64(sum) / float64(n)
	if mean < 8 || mean > 40 {
		t.Fatalf("exponential mean looks wrong: %v (want around 20)", mean)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Nodes != 60 || c.TargetPaths != 10 || c.Processors != 2 || c.Buses != 1 || c.CondTime != 1 {
		t.Fatalf("Normalize defaults wrong: %+v", c)
	}
	if c.CommMin < c.CondTime {
		t.Fatalf("communication times must be at least τ0")
	}
	c2 := Config{Hardware: 0, HardwareFraction: 0.5}.Normalize()
	if c2.HardwareFraction != 0 {
		t.Fatalf("hardware fraction must be zero without an ASIC")
	}
}

func TestRandomConfigRanges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		cfg := RandomConfig(r, 80, 24)
		if cfg.Processors < 1 || cfg.Processors > 11 {
			t.Fatalf("processors out of the paper's range: %d", cfg.Processors)
		}
		if cfg.Buses < 1 || cfg.Buses > 8 {
			t.Fatalf("buses out of the paper's range: %d", cfg.Buses)
		}
		if cfg.Hardware != 1 {
			t.Fatalf("the paper uses exactly one ASIC, got %d", cfg.Hardware)
		}
		if cfg.Nodes != 80 || cfg.TargetPaths != 24 {
			t.Fatalf("node/path targets not preserved: %+v", cfg)
		}
	}
}

func TestFactorizeProduct(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 3, 4, 6, 10, 12, 18, 24, 32, 7, 13} {
		for i := 0; i < 10; i++ {
			fs := factorize(r, n)
			prod := 1
			for _, f := range fs {
				if f < 2 {
					t.Fatalf("factor %d < 2 for n=%d", f, n)
				}
				prod *= f
			}
			if prod != n {
				t.Fatalf("factorize(%d) = %v, product %d", n, fs, prod)
			}
		}
	}
	if got := factorize(r, 1); len(got) != 0 {
		t.Fatalf("factorize(1) = %v, want empty", got)
	}
}

func TestDistString(t *testing.T) {
	if DistUniform.String() != "uniform" || DistExponential.String() != "exponential" {
		t.Fatalf("distribution names wrong")
	}
	if Dist(9).String() == "" {
		t.Fatalf("unknown distribution must render")
	}
}
