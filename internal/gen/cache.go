package gen

import "repro/internal/memo"

// Cache memoizes generated instances by the content hash of their
// (normalized) configuration, so experiments that share (nodes, paths, seed)
// — ablation sweeps running the same graphs under different scheduling
// options, repeated figure runs — reuse the generated graphs instead of
// rebuilding them. Generated graphs are finalized and only read afterwards,
// so one cached instance may be scheduled concurrently by many callers.
//
// A nil *Cache is valid and simply generates every time.
type Cache struct {
	lru *memo.LRU[*Instance]
}

// DefaultCacheSize is the instance capacity used when NewCache is given a
// non-positive size.
const DefaultCacheSize = 512

// NewCache returns a cache holding at most capacity instances
// (capacity <= 0 selects DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{lru: memo.NewLRU[*Instance](capacity)}
}

// Generate returns the instance for cfg, reusing a previously generated one
// with the same normalized configuration when available.
func (c *Cache) Generate(cfg Config) (*Instance, error) {
	if c == nil {
		return Generate(cfg)
	}
	key, err := memo.HashJSON(cfg.Normalize())
	if err != nil {
		return nil, err
	}
	if inst, ok := c.lru.Get(key); ok {
		return inst, nil
	}
	inst, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	c.lru.Add(key, inst)
	return inst, nil
}

// Hits and Misses report how often Generate was served from the cache; a
// nil cache reports zero.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.lru.Hits()
}

// Misses reports the number of Generate calls that had to build an instance;
// a nil cache reports zero.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.lru.Misses()
}
