// Package gen generates random conditional process graphs and architectures
// with the structural parameters used in the experimental evaluation of the
// paper (section 6): a target number of nodes, a target number of alternative
// paths (10, 12, 18, 24 or 32 in the paper), execution times drawn from a
// uniform or exponential distribution, and architectures consisting of one
// ASIC, one to eleven processors and one to eight buses.
//
// Graphs are generated from a fixed seed, so every experiment is
// reproducible.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/cpg"
)

// Dist selects the execution-time distribution.
type Dist int

const (
	// DistUniform draws execution times uniformly from [ExecMin, ExecMax].
	DistUniform Dist = iota
	// DistExponential draws execution times from an exponential
	// distribution with mean ExecMean (clamped to at least 1).
	DistExponential
)

// String returns the distribution name.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistExponential:
		return "exponential"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Config describes one generated problem instance.
type Config struct {
	// Seed makes the generation reproducible.
	Seed int64
	// Nodes is the target number of ordinary processes (communication
	// processes, source and sink are added on top of this).
	Nodes int
	// TargetPaths is the number of alternative paths through the graph.
	TargetPaths int
	// Processors, Hardware and Buses describe the architecture.
	Processors int
	Hardware   int
	Buses      int
	// CondTime is the condition broadcast time τ0.
	CondTime int64
	// ExecDist, ExecMin, ExecMax and ExecMean parameterise process
	// execution times.
	ExecDist Dist
	ExecMin  int64
	ExecMax  int64
	ExecMean float64
	// CommMin and CommMax bound the communication times (never smaller
	// than CondTime, as assumed by the paper).
	CommMin int64
	CommMax int64
	// HardwareFraction is the probability that a process is mapped to the
	// ASIC rather than to a programmable processor.
	HardwareFraction float64
}

// Normalize fills unset fields with sensible defaults.
func (c Config) Normalize() Config {
	if c.Nodes <= 0 {
		c.Nodes = 60
	}
	if c.TargetPaths <= 0 {
		c.TargetPaths = 10
	}
	if c.Processors <= 0 {
		c.Processors = 2
	}
	if c.Hardware < 0 {
		c.Hardware = 0
	}
	if c.Buses <= 0 {
		c.Buses = 1
	}
	if c.CondTime <= 0 {
		c.CondTime = 1
	}
	if c.ExecMin <= 0 {
		c.ExecMin = 5
	}
	if c.ExecMax < c.ExecMin {
		c.ExecMax = c.ExecMin + 45
	}
	if c.ExecMean <= 0 {
		c.ExecMean = float64(c.ExecMin+c.ExecMax) / 2
	}
	if c.CommMin < c.CondTime {
		c.CommMin = c.CondTime
	}
	if c.CommMax < c.CommMin {
		c.CommMax = c.CommMin + 9
	}
	if c.HardwareFraction < 0 || c.HardwareFraction > 1 {
		c.HardwareFraction = 0.2
	}
	if c.Hardware == 0 && c.HardwareFraction != 0 {
		c.HardwareFraction = 0
	}
	return c
}

// RandomConfig draws a configuration matching the experimental setup of the
// paper for a given graph size and path count: one ASIC, one to eleven
// processors, one to eight buses, and a uniform or exponential execution time
// distribution chosen at random.
func RandomConfig(r *rand.Rand, nodes, paths int) Config {
	cfg := Config{
		Seed:             r.Int63(),
		Nodes:            nodes,
		TargetPaths:      paths,
		Processors:       1 + r.Intn(11),
		Hardware:         1,
		Buses:            1 + r.Intn(8),
		CondTime:         1 + int64(r.Intn(2)),
		ExecMin:          5,
		ExecMax:          50,
		ExecMean:         25,
		CommMin:          3,
		CommMax:          25,
		HardwareFraction: 0.15 + 0.15*r.Float64(),
	}
	if r.Intn(2) == 0 {
		cfg.ExecDist = DistUniform
	} else {
		cfg.ExecDist = DistExponential
	}
	return cfg.Normalize()
}

// Instance is a generated problem: the graph (with communication processes
// inserted) and the architecture it is mapped to.
type Instance struct {
	Config Config
	Graph  *cpg.Graph
	Arch   *arch.Architecture
}

type generator struct {
	r         *rand.Rand
	cfg       Config
	g         *cpg.Graph
	a         *arch.Architecture
	computePE []arch.PEID
	hwPE      []arch.PEID
	busPE     []arch.PEID
	extra     int // ordinary processes still to place beyond the skeleton
	edges     []cpg.EdgeID
}

// Generate builds a random conditional process graph and architecture from
// the configuration.
func Generate(cfg Config) (*Instance, error) {
	cfg = cfg.Normalize()
	if cfg.TargetPaths == 1 {
		// Degenerate but allowed: a graph without conditions.
	}
	gen := &generator{r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	gen.buildArch()
	if err := gen.buildGraph(); err != nil {
		return nil, err
	}
	if err := gen.finish(); err != nil {
		return nil, err
	}
	return &Instance{Config: cfg, Graph: gen.g, Arch: gen.a}, nil
}

func (gen *generator) buildArch() {
	a := arch.New()
	for i := 0; i < gen.cfg.Processors; i++ {
		gen.computePE = append(gen.computePE, a.AddProcessor(fmt.Sprintf("cpu%d", i+1), 1))
	}
	for i := 0; i < gen.cfg.Hardware; i++ {
		gen.hwPE = append(gen.hwPE, a.AddHardware(fmt.Sprintf("asic%d", i+1)))
	}
	for i := 0; i < gen.cfg.Buses; i++ {
		// The first bus connects all processors (condition broadcasts);
		// additional buses are ordinary shared buses.
		gen.busPE = append(gen.busPE, a.AddBus(fmt.Sprintf("bus%d", i+1), i == 0))
	}
	a.SetCondTime(gen.cfg.CondTime)
	gen.a = a
}

// execTime draws one execution time.
func (gen *generator) execTime() int64 {
	switch gen.cfg.ExecDist {
	case DistExponential:
		v := int64(math.Round(gen.r.ExpFloat64() * gen.cfg.ExecMean))
		if v < 1 {
			v = 1
		}
		return v
	default:
		return gen.cfg.ExecMin + gen.r.Int63n(gen.cfg.ExecMax-gen.cfg.ExecMin+1)
	}
}

// commTime draws one communication time (at least τ0).
func (gen *generator) commTime() int64 {
	return gen.cfg.CommMin + gen.r.Int63n(gen.cfg.CommMax-gen.cfg.CommMin+1)
}

// pickPE maps one ordinary process.
func (gen *generator) pickPE() arch.PEID {
	if len(gen.hwPE) > 0 && gen.r.Float64() < gen.cfg.HardwareFraction {
		return gen.hwPE[gen.r.Intn(len(gen.hwPE))]
	}
	return gen.computePE[gen.r.Intn(len(gen.computePE))]
}

// newProc adds one ordinary process.
func (gen *generator) newProc() cpg.ProcID {
	return gen.g.AddProcess("", gen.execTime(), gen.pickPE())
}

func (gen *generator) addEdge(from, to cpg.ProcID) {
	gen.edges = append(gen.edges, gen.g.AddEdge(from, to))
}

// chain appends n ordinary processes after from and returns the last one.
func (gen *generator) chain(from cpg.ProcID, n int) cpg.ProcID {
	cur := from
	for i := 0; i < n; i++ {
		p := gen.newProc()
		gen.addEdge(cur, p)
		cur = p
	}
	return cur
}

// factorize splits the target path count into factors >= 2 whose product is
// the target; each factor becomes one condition block in series.
func factorize(r *rand.Rand, n int) []int {
	var factors []int
	for n > 1 {
		var divisors []int
		for d := 2; d <= n && d <= 6; d++ {
			if n%d == 0 {
				divisors = append(divisors, d)
			}
		}
		if len(divisors) == 0 {
			// Prime larger than 6: take the whole remainder as one block.
			factors = append(factors, n)
			break
		}
		f := divisors[r.Intn(len(divisors))]
		factors = append(factors, f)
		n /= f
	}
	return factors
}

// block builds one condition block with the given number of leaves (i.e. the
// number of alternative sub-paths it contributes), starting after `from`, and
// returns the conjunction process that closes it.
func (gen *generator) block(from cpg.ProcID, leaves int) cpg.ProcID {
	if leaves <= 1 {
		return gen.chain(from, 1)
	}
	d := gen.newProc()
	gen.addEdge(from, d)
	c := gen.g.AddCondition("", d)

	split := 1 + gen.r.Intn(leaves-1)
	buildBranch := func(val bool, branchLeaves int) cpg.ProcID {
		start := gen.newProc()
		gen.edges = append(gen.edges, gen.g.AddCondEdge(d, start, c, val))
		if branchLeaves > 1 {
			return gen.block(start, branchLeaves)
		}
		return start
	}
	tEnd := buildBranch(true, split)
	fEnd := buildBranch(false, leaves-split)

	join := gen.newProc()
	gen.addEdge(tEnd, join)
	gen.addEdge(fEnd, join)
	return join
}

func (gen *generator) buildGraph() error {
	gen.g = cpg.New(fmt.Sprintf("gen-n%d-p%d-s%d", gen.cfg.Nodes, gen.cfg.TargetPaths, gen.cfg.Seed))
	factors := factorize(gen.r, gen.cfg.TargetPaths)

	start := gen.newProc()
	cur := start
	for _, f := range factors {
		cur = gen.block(cur, f)
		// A short unconditional segment between blocks.
		cur = gen.chain(cur, 1)
	}

	// Pad the skeleton with additional processes until the target node
	// count is reached: either split an existing edge (lengthening a path)
	// or add a parallel process between the endpoints of an existing edge
	// (adding parallelism). Both preserve guards and path counts.
	for gen.g.NumOrdinary() < gen.cfg.Nodes {
		if len(gen.edges) == 0 {
			gen.chain(cur, 1)
			continue
		}
		eid := gen.edges[gen.r.Intn(len(gen.edges))]
		e := gen.g.Edge(eid)
		if e == nil {
			continue
		}
		p := gen.newProc()
		if gen.r.Intn(2) == 0 && !e.HasCond {
			// Parallel process: from -> p -> to, keeping the original edge.
			// The guard of the target is unchanged because the original
			// edge already contributes the same guard.
			gen.addEdge(e.From, p)
			gen.addEdge(p, e.To)
		} else {
			// Dangling process appended after the edge target; Finalize
			// connects it to the sink. Its guard equals the guard of the
			// target, so no guard in the rest of the graph is widened and
			// the number of alternative paths is preserved.
			gen.addEdge(e.To, p)
		}
	}
	return nil
}

func (gen *generator) finish() error {
	// Insert communication processes on every cross-processing-element edge,
	// spreading them over the buses.
	i := 0
	planner := func(g *cpg.Graph, e *cpg.Edge) (cpg.CommSpec, bool) {
		bus := gen.busPE[i%len(gen.busPE)]
		i++
		return cpg.CommSpec{Time: gen.commTime(), Bus: bus}, true
	}
	if _, err := cpg.InsertComms(gen.g, gen.a, planner); err != nil {
		return err
	}
	if err := gen.g.Finalize(gen.a); err != nil {
		return err
	}
	paths, err := gen.g.AlternativePaths(0)
	if err != nil {
		return err
	}
	if len(paths) != gen.cfg.TargetPaths {
		return errors.New("gen: generated graph has an unexpected number of alternative paths")
	}
	return nil
}
