package gen_test

// The external test package avoids an import cycle: textio (used to compare
// generated instances structurally) imports gen.

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/textio"
)

// FuzzGenerateDeterminism pins the reproducibility invariant of the
// generator: the same configuration must always build the same instance —
// the property the sweep's per-cell seeding, the instance cache and the
// experiment regeneration all rely on. Run with
// `go test -fuzz FuzzGenerateDeterminism ./internal/gen`.
func FuzzGenerateDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(10))
	f.Add(int64(1998), uint8(120), uint8(32))
	f.Add(int64(-7), uint8(0), uint8(0))
	f.Add(int64(42), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, nodes, paths uint8) {
		cfg := gen.Config{
			Seed:        seed,
			Nodes:       int(nodes % 150),
			TargetPaths: int(paths%32) + 1,
			Processors:  int(nodes%4) + 1,
			Hardware:    int(paths % 2),
			Buses:       int(seed&1) + 1,
		}
		first, err := gen.Generate(cfg)
		if err != nil {
			return // invalid configurations may be rejected, just not panic
		}
		second, err := gen.Generate(cfg)
		if err != nil {
			t.Fatalf("second Generate failed where first succeeded: %v", err)
		}
		var b1, b2 bytes.Buffer
		if err := textio.Write(&b1, first.Graph, first.Arch); err != nil {
			t.Fatalf("encoding first instance: %v", err)
		}
		if err := textio.Write(&b2, second.Graph, second.Arch); err != nil {
			t.Fatalf("encoding second instance: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("Generate is not deterministic for %+v", cfg)
		}
		if !first.Graph.Finalized() {
			t.Fatalf("generated graph not finalized")
		}
	})
}
