package cond

import (
	"sort"
	"strings"
)

// DNF is a disjunction of cubes. It is the representation used for process
// guards: a process guard is satisfied on an alternative path when at least
// one of its cubes is implied by the path label.
//
// The zero value is the constant false (empty disjunction). Use DNFTrue for
// the constant true. DNFs are immutable.
type DNF struct {
	cubes []Cube
}

// DNFFalse returns the constant false guard.
func DNFFalse() DNF { return DNF{} }

// DNFTrue returns the constant true guard (a single empty cube).
func DNFTrue() DNF { return DNF{cubes: []Cube{True()}} }

// FromCube returns a DNF consisting of the single cube c.
func FromCube(c Cube) DNF { return DNF{cubes: []Cube{c}} }

// FromCubes returns a simplified DNF over the given cubes.
func FromCubes(cubes ...Cube) DNF {
	d := DNF{cubes: append([]Cube(nil), cubes...)}
	return d.Simplify()
}

// IsFalse reports whether the DNF is the empty disjunction.
func (d DNF) IsFalse() bool { return len(d.cubes) == 0 }

// IsTrue reports whether the DNF contains the empty cube.
func (d DNF) IsTrue() bool {
	for _, c := range d.cubes {
		if c.IsTrue() {
			return true
		}
	}
	return false
}

// Cubes returns a copy of the cubes of the DNF.
func (d DNF) Cubes() []Cube { return append([]Cube(nil), d.cubes...) }

// Len returns the number of cubes.
func (d DNF) Len() int { return len(d.cubes) }

// Or returns the disjunction of two DNFs, simplified.
func (d DNF) Or(o DNF) DNF {
	n := DNF{cubes: append(append([]Cube(nil), d.cubes...), o.cubes...)}
	return n.Simplify()
}

// OrCube returns the disjunction of the DNF with a single cube, simplified.
func (d DNF) OrCube(c Cube) DNF { return d.Or(FromCube(c)) }

// And returns the conjunction of two DNFs, simplified. Unsatisfiable product
// cubes are dropped.
func (d DNF) And(o DNF) DNF {
	var out []Cube
	for _, a := range d.cubes {
		for _, b := range o.cubes {
			if p, ok := a.And(b); ok {
				out = append(out, p)
			}
		}
	}
	return DNF{cubes: out}.Simplify()
}

// AndCube returns the conjunction of the DNF with a single cube.
func (d DNF) AndCube(c Cube) DNF { return d.And(FromCube(c)) }

// Conds returns the set of conditions mentioned anywhere in the DNF, sorted.
func (d DNF) Conds() []Cond {
	set := map[Cond]bool{}
	for _, c := range d.cubes {
		for _, k := range c.Conds() {
			set[k] = true
		}
	}
	out := make([]Cond, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SatisfiedBy reports whether the (possibly partial) assignment assign makes
// the DNF true, i.e. some cube of the DNF is implied by assign. Conditions
// not mentioned by assign count as unknown, so a cube that mentions such a
// condition is not satisfied.
func (d DNF) SatisfiedBy(assign Cube) bool {
	for _, c := range d.cubes {
		if assign.Implies(c) {
			return true
		}
	}
	return false
}

// FalsifiedBy reports whether the assignment makes the DNF definitely false:
// every cube contains a literal contradicted by assign.
func (d DNF) FalsifiedBy(assign Cube) bool {
	if d.IsFalse() {
		return true
	}
	for _, c := range d.cubes {
		if assign.Compatible(c) {
			return false
		}
	}
	return true
}

// SatisfiedCube returns the first cube implied by assign, if any.
func (d DNF) SatisfiedCube(assign Cube) (Cube, bool) {
	for _, c := range d.cubes {
		if assign.Implies(c) {
			return c, true
		}
	}
	return Cube{}, false
}

// Simplify removes subsumed cubes and merges pairs of cubes that differ in
// exactly one literal (the consensus rule restricted to adjacent cubes, which
// is sufficient for the guards produced by conditional process graphs). The
// result is logically equivalent to the input.
func (d DNF) Simplify() DNF {
	cubes := append([]Cube(nil), d.cubes...)
	changed := true
	for changed {
		changed = false
		// Merge cubes differing in exactly one literal.
	merge:
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				if m, ok := mergeAdjacent(cubes[i], cubes[j]); ok {
					cubes[i] = m
					cubes = append(cubes[:j], cubes[j+1:]...)
					changed = true
					break merge
				}
			}
		}
		// Drop cubes subsumed by another cube (a implies b means a is
		// more specific; it is subsumed by b).
		out := cubes[:0:0]
		for i, a := range cubes {
			subsumed := false
			for j, b := range cubes {
				if i == j {
					continue
				}
				if a.Implies(b) && !(b.Implies(a) && j > i) {
					// a is subsumed by b; keep only the first of equal cubes.
					if !a.Equal(b) || j < i {
						subsumed = true
						break
					}
				}
			}
			if !subsumed {
				out = append(out, a)
			}
		}
		if len(out) != len(cubes) {
			changed = true
		}
		cubes = out
	}
	sort.Slice(cubes, func(i, j int) bool { return cubes[i].Compare(cubes[j]) < 0 })
	return DNF{cubes: cubes}
}

// mergeAdjacent merges two cubes that mention exactly the same conditions and
// differ in the value of exactly one of them, returning the cube without that
// condition.
func mergeAdjacent(a, b Cube) (Cube, bool) {
	if a.Len() != b.Len() || a.Len() == 0 {
		return Cube{}, false
	}
	if !a.CondsSubsetOf(b) {
		return Cube{}, false
	}
	diff := None
	for _, l := range a.Lits() {
		bv, _ := b.Value(l.Cond)
		if bv != l.Val {
			if diff != None {
				return Cube{}, false
			}
			diff = l.Cond
		}
	}
	if diff == None {
		// Identical cubes merge trivially.
		return a, true
	}
	return a.Without(diff), true
}

// assignments enumerates all full assignments over the given conditions and
// calls fn for each; fn returning false stops the enumeration early.
func assignments(conds []Cond, fn func(Cube) bool) {
	n := len(conds)
	if n > 24 {
		n = 24 // safety bound; CPGs never get close to this
	}
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		c := True()
		for i := 0; i < n; i++ {
			c = c.MustWith(conds[i], mask&(1<<uint(i)) != 0)
		}
		if !fn(c) {
			return
		}
	}
}

// Implies reports whether d logically implies o, checked by enumerating all
// assignments over the union of mentioned conditions. Guards mention only a
// handful of conditions, so the enumeration is cheap.
func (d DNF) Implies(o DNF) bool {
	condSet := map[Cond]bool{}
	for _, c := range append(d.Conds(), o.Conds()...) {
		condSet[c] = true
	}
	conds := make([]Cond, 0, len(condSet))
	for c := range condSet {
		conds = append(conds, c)
	}
	sort.Slice(conds, func(i, j int) bool { return conds[i] < conds[j] })
	ok := true
	assignments(conds, func(a Cube) bool {
		if d.SatisfiedBy(a) && !o.SatisfiedBy(a) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equivalent reports whether the two DNFs denote the same boolean function.
func (d DNF) Equivalent(o DNF) bool { return d.Implies(o) && o.Implies(d) }

// String renders the DNF with default condition names.
func (d DNF) String() string { return d.Format(nil) }

// Format renders the DNF using the given Namer.
func (d DNF) Format(n Namer) string {
	if d.IsFalse() {
		return "false"
	}
	parts := make([]string, 0, len(d.cubes))
	for _, c := range d.cubes {
		parts = append(parts, c.Format(n))
	}
	return strings.Join(parts, " | ")
}
