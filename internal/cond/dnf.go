package cond

import (
	"math/bits"
	"sort"
	"strings"
)

// DNF is a disjunction of cubes. It is the representation used for process
// guards: a process guard is satisfied on an alternative path when at least
// one of its cubes is implied by the path label.
//
// The zero value is the constant false (empty disjunction). Use DNFTrue for
// the constant true. DNFs are immutable.
type DNF struct {
	cubes []Cube
}

// DNFFalse returns the constant false guard.
func DNFFalse() DNF { return DNF{} }

// DNFTrue returns the constant true guard (a single empty cube).
func DNFTrue() DNF { return DNF{cubes: []Cube{True()}} }

// FromCube returns a DNF consisting of the single cube c.
func FromCube(c Cube) DNF { return DNF{cubes: []Cube{c}} }

// FromCubes returns a simplified DNF over the given cubes.
func FromCubes(cubes ...Cube) DNF {
	d := DNF{cubes: append([]Cube(nil), cubes...)}
	return d.Simplify()
}

// IsFalse reports whether the DNF is the empty disjunction.
func (d DNF) IsFalse() bool { return len(d.cubes) == 0 }

// IsTrue reports whether the DNF contains the empty cube.
func (d DNF) IsTrue() bool {
	for _, c := range d.cubes {
		if c.IsTrue() {
			return true
		}
	}
	return false
}

// Cubes returns a copy of the cubes of the DNF.
func (d DNF) Cubes() []Cube { return append([]Cube(nil), d.cubes...) }

// Len returns the number of cubes.
func (d DNF) Len() int { return len(d.cubes) }

// Or returns the disjunction of two DNFs, simplified.
func (d DNF) Or(o DNF) DNF {
	n := DNF{cubes: append(append([]Cube(nil), d.cubes...), o.cubes...)}
	return n.Simplify()
}

// OrCube returns the disjunction of the DNF with a single cube, simplified.
func (d DNF) OrCube(c Cube) DNF { return d.Or(FromCube(c)) }

// And returns the conjunction of two DNFs, simplified. Unsatisfiable product
// cubes are dropped.
func (d DNF) And(o DNF) DNF {
	var out []Cube
	for _, a := range d.cubes {
		for _, b := range o.cubes {
			if p, ok := a.And(b); ok {
				out = append(out, p)
			}
		}
	}
	return DNF{cubes: out}.Simplify()
}

// AndCube returns the conjunction of the DNF with a single cube.
func (d DNF) AndCube(c Cube) DNF { return d.And(FromCube(c)) }

// Conds returns the set of conditions mentioned anywhere in the DNF, sorted.
func (d DNF) Conds() []Cond {
	var m uint64
	for _, c := range d.cubes {
		m |= c.Mask()
	}
	return maskConds(m)
}

// maskConds expands a condition bitmask into the sorted condition slice.
func maskConds(m uint64) []Cond {
	out := make([]Cond, 0, bits.OnesCount64(m))
	for ; m != 0; m &= m - 1 {
		out = append(out, Cond(bits.TrailingZeros64(m)))
	}
	return out
}

// SatisfiedBy reports whether the (possibly partial) assignment assign makes
// the DNF true, i.e. some cube of the DNF is implied by assign. Conditions
// not mentioned by assign count as unknown, so a cube that mentions such a
// condition is not satisfied.
func (d DNF) SatisfiedBy(assign Cube) bool {
	for _, c := range d.cubes {
		if assign.Implies(c) {
			return true
		}
	}
	return false
}

// FalsifiedBy reports whether the assignment makes the DNF definitely false:
// every cube contains a literal contradicted by assign.
func (d DNF) FalsifiedBy(assign Cube) bool {
	if d.IsFalse() {
		return true
	}
	for _, c := range d.cubes {
		if assign.Compatible(c) {
			return false
		}
	}
	return true
}

// SatisfiedCube returns the first cube implied by assign, if any.
func (d DNF) SatisfiedCube(assign Cube) (Cube, bool) {
	for _, c := range d.cubes {
		if assign.Implies(c) {
			return c, true
		}
	}
	return Cube{}, false
}

// Simplify removes subsumed cubes and merges pairs of cubes that differ in
// exactly one literal (the consensus rule restricted to adjacent cubes, which
// is sufficient for the guards produced by conditional process graphs). The
// result is logically equivalent to the input.
func (d DNF) Simplify() DNF {
	cubes := append([]Cube(nil), d.cubes...)
	changed := true
	for changed {
		changed = false
		// Merge cubes differing in exactly one literal.
	merge:
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				if m, ok := mergeAdjacent(cubes[i], cubes[j]); ok {
					cubes[i] = m
					cubes = append(cubes[:j], cubes[j+1:]...)
					changed = true
					break merge
				}
			}
		}
		// Drop cubes subsumed by another cube (a implies b means a is
		// more specific; it is subsumed by b).
		out := cubes[:0:0]
		for i, a := range cubes {
			subsumed := false
			for j, b := range cubes {
				if i == j {
					continue
				}
				if a.Implies(b) && !(b.Implies(a) && j > i) {
					// a is subsumed by b; keep only the first of equal cubes.
					if !a.Equal(b) || j < i {
						subsumed = true
						break
					}
				}
			}
			if !subsumed {
				out = append(out, a)
			}
		}
		if len(out) != len(cubes) {
			changed = true
		}
		cubes = out
	}
	sort.Slice(cubes, func(i, j int) bool { return cubes[i].Compare(cubes[j]) < 0 })
	return DNF{cubes: cubes}
}

// mergeAdjacent merges two cubes that mention exactly the same conditions and
// differ in the value of exactly one of them, returning the cube without that
// condition.
func mergeAdjacent(a, b Cube) (Cube, bool) {
	if a.IsTrue() || a.Mask() != b.Mask() {
		return Cube{}, false
	}
	diff := a.PosMask() ^ b.PosMask() // same mask, so also neg^neg
	if diff == 0 {
		// Identical cubes merge trivially.
		return a, true
	}
	if bits.OnesCount64(diff) != 1 {
		return Cube{}, false
	}
	return a.Without(Cond(bits.TrailingZeros64(diff))), true
}

// assignments enumerates all full assignments over the given conditions and
// calls fn for each; fn returning false stops the enumeration early.
func assignments(conds []Cond, fn func(Cube) bool) {
	n := len(conds)
	if n > 24 {
		n = 24 // safety bound; CPGs never get close to this
	}
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		var c Cube
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(conds[i])
			if mask&(1<<uint(i)) != 0 {
				c.pos |= bit
			} else {
				c.neg |= bit
			}
		}
		if !fn(c) {
			return
		}
	}
}

// Implies reports whether d logically implies o: every assignment satisfying
// some cube of d satisfies o. Each cube is first checked against the cubes of
// o directly (the overwhelmingly common case in guard validation); only when
// a cube is covered by a combination of o's cubes does the check fall back to
// enumerating the assignments of the conditions o mentions beyond the cube.
// Guards mention only a handful of conditions, so even the fallback is cheap.
func (d DNF) Implies(o DNF) bool {
	for _, a := range d.cubes {
		if !cubeImpliesDNF(a, o) {
			return false
		}
	}
	return true
}

// ImpliedByCube reports whether the single cube c implies the DNF. It is
// equivalent to FromCube(c).Implies(d) without building the intermediate DNF.
func (d DNF) ImpliedByCube(c Cube) bool { return cubeImpliesDNF(c, d) }

// cubeImpliesDNF reports whether every assignment satisfying cube a satisfies
// the DNF o.
func cubeImpliesDNF(a Cube, o DNF) bool {
	// Fast path: a is subsumed by one cube of o.
	for _, b := range o.cubes {
		if a.Implies(b) {
			return true
		}
	}
	// Slow path: a may still be covered by several cubes of o together.
	// Enumerate the assignments of the conditions o mentions and a does not,
	// each extended with a itself; conditions mentioned nowhere cannot
	// influence o.
	var freeMask uint64
	for _, b := range o.cubes {
		freeMask |= b.Mask()
	}
	freeMask &^= a.Mask()
	if freeMask == 0 {
		return false // a assigns everything o mentions, and no cube matched
	}
	free := maskConds(freeMask)
	ok := true
	assignments(free, func(x Cube) bool {
		full, compatible := a.And(x)
		if !compatible {
			return true // cannot happen: free excludes a's conditions
		}
		if !o.SatisfiedBy(full) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equivalent reports whether the two DNFs denote the same boolean function.
func (d DNF) Equivalent(o DNF) bool { return d.Implies(o) && o.Implies(d) }

// String renders the DNF with default condition names.
func (d DNF) String() string { return d.Format(nil) }

// Format renders the DNF using the given Namer.
func (d DNF) Format(n Namer) string {
	if d.IsFalse() {
		return "false"
	}
	parts := make([]string, 0, len(d.cubes))
	for _, c := range d.cubes {
		parts = append(parts, c.Format(n))
	}
	return strings.Join(parts, " | ")
}
