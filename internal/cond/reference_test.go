package cond

import (
	"strings"
	"testing"
)

// This file carries a test-only copy of the sorted-literal-slice Cube
// implementation that the bitset representation replaced, and a fuzzer that
// drives both through the same operations. The reference is deliberately the
// old production code (modulo renaming): any divergence the fuzzer finds is a
// semantic regression of the bitset algebra, not a test artifact.

// refCube is the retired slice-backed cube: literals sorted by condition, at
// most one per condition, empty slice meaning true.
type refCube struct {
	lits []Lit
}

func newRefCube(lits ...Lit) (refCube, bool) {
	if len(lits) == 0 {
		return refCube{}, true
	}
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		i := len(out)
		for i > 0 && out[i-1].Cond > l.Cond {
			i--
		}
		if i > 0 && out[i-1].Cond == l.Cond {
			if out[i-1].Val != l.Val {
				return refCube{}, false
			}
			continue
		}
		out = append(out, Lit{})
		copy(out[i+1:], out[i:])
		out[i] = l
	}
	return refCube{lits: out}, true
}

func (c refCube) with(x Cond, v bool) (refCube, bool) {
	i := 0
	for i < len(c.lits) && c.lits[i].Cond < x {
		i++
	}
	if i < len(c.lits) && c.lits[i].Cond == x {
		if c.lits[i].Val != v {
			return refCube{}, false
		}
		return c, true
	}
	n := make([]Lit, len(c.lits)+1)
	copy(n, c.lits[:i])
	n[i] = Lit{Cond: x, Val: v}
	copy(n[i+1:], c.lits[i:])
	return refCube{lits: n}, true
}

func (c refCube) without(x Cond) refCube {
	for i, l := range c.lits {
		if l.Cond == x {
			n := make([]Lit, 0, len(c.lits)-1)
			n = append(n, c.lits[:i]...)
			n = append(n, c.lits[i+1:]...)
			return refCube{lits: n}
		}
	}
	return c
}

func (c refCube) and(o refCube) (refCube, bool) {
	n := make([]Lit, 0, len(c.lits)+len(o.lits))
	i, j := 0, 0
	for i < len(c.lits) && j < len(o.lits) {
		a, b := c.lits[i], o.lits[j]
		switch {
		case a.Cond < b.Cond:
			n = append(n, a)
			i++
		case a.Cond > b.Cond:
			n = append(n, b)
			j++
		default:
			if a.Val != b.Val {
				return refCube{}, false
			}
			n = append(n, a)
			i, j = i+1, j+1
		}
	}
	n = append(n, c.lits[i:]...)
	n = append(n, o.lits[j:]...)
	return refCube{lits: n}, true
}

func (c refCube) compatible(o refCube) bool {
	i, j := 0, 0
	for i < len(c.lits) && j < len(o.lits) {
		a, b := c.lits[i], o.lits[j]
		switch {
		case a.Cond < b.Cond:
			i++
		case a.Cond > b.Cond:
			j++
		default:
			if a.Val != b.Val {
				return false
			}
			i, j = i+1, j+1
		}
	}
	return true
}

func (c refCube) implies(o refCube) bool {
	i := 0
	for _, b := range o.lits {
		for i < len(c.lits) && c.lits[i].Cond < b.Cond {
			i++
		}
		if i >= len(c.lits) || c.lits[i].Cond != b.Cond || c.lits[i].Val != b.Val {
			return false
		}
		i++
	}
	return true
}

func (c refCube) equal(o refCube) bool {
	if len(c.lits) != len(o.lits) {
		return false
	}
	for i, l := range c.lits {
		if o.lits[i] != l {
			return false
		}
	}
	return true
}

func (c refCube) compare(o refCube) int {
	a, b := c.lits, o.lits
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Cond != b[i].Cond {
			return int(a[i].Cond) - int(b[i].Cond)
		}
		if a[i].Val != b[i].Val {
			if a[i].Val {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func (c refCube) format() string {
	if len(c.lits) == 0 {
		return "true"
	}
	parts := make([]string, 0, len(c.lits))
	for _, l := range c.lits {
		parts = append(parts, l.String())
	}
	return strings.Join(parts, "&")
}

// litsFromBytes decodes a byte string into a literal sequence. Conditions are
// folded into a small range so the fuzzer hits duplicates, contradictions and
// overlaps between the two cubes often, with an occasional high identifier to
// exercise the upper mask bits.
func litsFromBytes(data []byte) []Lit {
	lits := make([]Lit, 0, len(data))
	for _, b := range data {
		x := Cond((b >> 1) % 12)
		if b >= 0xF0 {
			x = Cond(MaxConds - 1 - int(b%4))
		}
		lits = append(lits, Lit{Cond: x, Val: b&1 == 1})
	}
	return lits
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// FuzzCubeBitsetEquivalence drives random literal sets through both the
// bitset Cube and the retired slice implementation and demands identical
// observable behaviour: construction validity, Implies, Compatible, And,
// Compare ordering, Format output, With/Without, and the Key equivalence
// relation (equal keys exactly for equal cubes).
func FuzzCubeBitsetEquivalence(f *testing.F) {
	f.Add([]byte{0x02, 0x05}, []byte{0x04}, uint8(1))
	f.Add([]byte{0x03, 0x02}, []byte{0x03, 0x07, 0x08}, uint8(3))
	f.Add([]byte{}, []byte{0xF1, 0xF2}, uint8(0))
	f.Add([]byte{0xFF, 0x01, 0x10}, []byte{0xFF, 0x00}, uint8(63))
	f.Fuzz(func(t *testing.T, da, db []byte, wb uint8) {
		la, lb := litsFromBytes(da), litsFromBytes(db)
		a, okA := NewCube(la...)
		ra, rokA := newRefCube(la...)
		if okA != rokA {
			t.Fatalf("NewCube(%v) ok=%v, reference ok=%v", la, okA, rokA)
		}
		b, okB := NewCube(lb...)
		rb, rokB := newRefCube(lb...)
		if okB != rokB {
			t.Fatalf("NewCube(%v) ok=%v, reference ok=%v", lb, okB, rokB)
		}
		if !okA || !okB {
			return // contradictory input rejected identically by both
		}

		if got, want := a.Format(nil), ra.format(); got != want {
			t.Fatalf("Format(%v) = %q, reference %q", la, got, want)
		}
		if got, want := a.Implies(b), ra.implies(rb); got != want {
			t.Fatalf("Implies(%v, %v) = %v, reference %v", la, lb, got, want)
		}
		if got, want := a.Compatible(b), ra.compatible(rb); got != want {
			t.Fatalf("Compatible(%v, %v) = %v, reference %v", la, lb, got, want)
		}
		if got, want := a.Equal(b), ra.equal(rb); got != want {
			t.Fatalf("Equal(%v, %v) = %v, reference %v", la, lb, got, want)
		}
		if got, want := sign(a.Compare(b)), sign(ra.compare(rb)); got != want {
			t.Fatalf("Compare(%v, %v) = %v, reference %v", la, lb, got, want)
		}
		and, okAnd := a.And(b)
		rand, rokAnd := ra.and(rb)
		if okAnd != rokAnd {
			t.Fatalf("And(%v, %v) ok=%v, reference ok=%v", la, lb, okAnd, rokAnd)
		}
		if okAnd {
			if got, want := and.Format(nil), rand.format(); got != want {
				t.Fatalf("And(%v, %v) = %q, reference %q", la, lb, got, want)
			}
		}

		// Keys: the byte encodings differ between representations by design,
		// but the equivalence relation they induce must be the same.
		if got, want := a.Key() == b.Key(), ra.equal(rb); got != want {
			t.Fatalf("Key(%v)==Key(%v) is %v, equality is %v", la, lb, got, want)
		}

		x := Cond(wb % uint8(MaxConds))
		w, okW := a.With(x, wb&1 == 1)
		rw, rokW := ra.with(x, wb&1 == 1)
		if okW != rokW {
			t.Fatalf("With(%v, %d) ok=%v, reference ok=%v", la, x, okW, rokW)
		}
		if okW {
			if got, want := w.Format(nil), rw.format(); got != want {
				t.Fatalf("With(%v, %d) = %q, reference %q", la, x, got, want)
			}
		}
		if got, want := a.Without(x).Format(nil), ra.without(x).format(); got != want {
			t.Fatalf("Without(%v, %d) = %q, reference %q", la, x, got, want)
		}
	})
}

// TestLitsAliasingRegression pins the close of the Lits aliasing hole: the
// returned slice is a snapshot, and writing through it must not alter the
// cube. Under the slice representation this exact sequence silently corrupted
// shared state.
func TestLitsAliasingRegression(t *testing.T) {
	c := MustCube(Lit{Cond: 0, Val: true}, Lit{Cond: 3, Val: false})
	lits := c.Lits()
	lits[0] = Lit{Cond: 7, Val: false}
	lits[1] = Lit{Cond: 9, Val: true}
	if got, want := c.String(), "c0&!c3"; got != want {
		t.Fatalf("cube changed after writing through Lits(): %q, want %q", got, want)
	}
	if v, ok := c.Value(0); !ok || !v {
		t.Fatalf("literal c0 lost after writing through Lits()")
	}
	if c.Has(7) || c.Has(9) {
		t.Fatalf("foreign literals leaked into the cube through Lits()")
	}
	// Two calls must hand out independent snapshots.
	l1, l2 := c.Lits(), c.Lits()
	l1[0].Cond = 42
	if l2[0].Cond != 0 {
		t.Fatalf("Lits() results share backing storage")
	}
}
