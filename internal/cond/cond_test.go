package cond

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func lit(c int, v bool) Lit { return Lit{Cond: Cond(c), Val: v} }

func TestTrueCube(t *testing.T) {
	c := True()
	if !c.IsTrue() {
		t.Fatalf("True() should be the empty cube")
	}
	if c.Len() != 0 {
		t.Fatalf("True() length = %d, want 0", c.Len())
	}
	if got := c.String(); got != "true" {
		t.Fatalf("True().String() = %q, want %q", got, "true")
	}
	if got := c.Key(); got != strings.Repeat("\x00", 16) {
		t.Fatalf("True().Key() = %q, want 16 zero bytes", got)
	}
}

func TestNewCube(t *testing.T) {
	c, ok := NewCube(lit(0, true), lit(1, false))
	if !ok {
		t.Fatalf("NewCube returned not ok for consistent literals")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v, ok := c.Value(0); !ok || !v {
		t.Fatalf("Value(0) = %v,%v want true,true", v, ok)
	}
	if v, ok := c.Value(1); !ok || v {
		t.Fatalf("Value(1) = %v,%v want false,true", v, ok)
	}
	if _, ok := c.Value(2); ok {
		t.Fatalf("Value(2) should not be present")
	}
}

func TestNewCubeContradiction(t *testing.T) {
	if _, ok := NewCube(lit(0, true), lit(0, false)); ok {
		t.Fatalf("NewCube should fail on contradictory literals")
	}
}

func TestMustCubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustCube should panic on contradiction")
		}
	}()
	MustCube(lit(0, true), lit(0, false))
}

func TestWithDoesNotMutate(t *testing.T) {
	a := MustCube(lit(0, true))
	b, ok := a.With(1, false)
	if !ok {
		t.Fatalf("With failed")
	}
	if a.Len() != 1 {
		t.Fatalf("With mutated the receiver: len=%d", a.Len())
	}
	if b.Len() != 2 {
		t.Fatalf("With result has len=%d, want 2", b.Len())
	}
}

func TestWithSameValueIsNoop(t *testing.T) {
	a := MustCube(lit(0, true))
	b, ok := a.With(0, true)
	if !ok || !a.Equal(b) {
		t.Fatalf("With on existing literal with same value should be a no-op")
	}
	if _, ok := a.With(0, false); ok {
		t.Fatalf("With on existing literal with opposite value should fail")
	}
}

func TestWithout(t *testing.T) {
	a := MustCube(lit(0, true), lit(1, false))
	b := a.Without(0)
	if b.Has(0) || !b.Has(1) || a.Len() != 2 {
		t.Fatalf("Without misbehaved: a=%v b=%v", a, b)
	}
	if !a.Without(7).Equal(a) {
		t.Fatalf("Without of an absent condition must be identity")
	}
}

func TestAndCompatible(t *testing.T) {
	a := MustCube(lit(0, true))
	b := MustCube(lit(1, false))
	c, ok := a.And(b)
	if !ok || c.Len() != 2 {
		t.Fatalf("And of compatible cubes failed: %v %v", c, ok)
	}
	d := MustCube(lit(0, false))
	if _, ok := a.And(d); ok {
		t.Fatalf("And of incompatible cubes should fail")
	}
	if a.Compatible(d) {
		t.Fatalf("Compatible should be false for contradictory cubes")
	}
	if !a.Compatible(b) {
		t.Fatalf("Compatible should be true for disjoint cubes")
	}
}

func TestImplies(t *testing.T) {
	dck := MustCube(lit(0, true), lit(1, true), lit(2, false))
	dc := MustCube(lit(0, true), lit(1, true))
	if !dck.Implies(dc) {
		t.Fatalf("D&C&!K should imply D&C")
	}
	if dc.Implies(dck) {
		t.Fatalf("D&C should not imply D&C&!K")
	}
	if !dck.Implies(True()) {
		t.Fatalf("every cube implies true")
	}
	if True().Implies(dc) {
		t.Fatalf("true should not imply a non-empty cube")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := MustCube(lit(2, false), lit(0, true))
	b := MustCube(lit(0, true), lit(2, false))
	if !a.Equal(b) {
		t.Fatalf("cubes with same literals must be equal regardless of construction order")
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := MustCube(lit(0, true), lit(2, true))
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatalf("cubes with different values must not be equal")
	}
}

func TestCondsSubsetOf(t *testing.T) {
	a := MustCube(lit(0, true))
	b := MustCube(lit(0, false), lit(1, true))
	if !a.CondsSubsetOf(b) {
		t.Fatalf("conds {0} should be a subset of conds {0,1} regardless of values")
	}
	if b.CondsSubsetOf(a) {
		t.Fatalf("conds {0,1} should not be a subset of conds {0}")
	}
	if !True().CondsSubsetOf(a) {
		t.Fatalf("true has no conditions, subset of everything")
	}
}

func TestFormatWithNamer(t *testing.T) {
	names := map[Cond]string{0: "D", 1: "C", 2: "K"}
	n := func(c Cond) string { return names[c] }
	cube := MustCube(lit(0, true), lit(1, true), lit(2, false))
	if got := cube.Format(n); got != "D&C&!K" {
		t.Fatalf("Format = %q, want %q", got, "D&C&!K")
	}
	if got := True().Format(n); got != "true" {
		t.Fatalf("Format(true) = %q", got)
	}
}

func TestLitsSortedAndNegate(t *testing.T) {
	cube := MustCube(lit(3, false), lit(1, true))
	ls := cube.Lits()
	if len(ls) != 2 || ls[0].Cond != 1 || ls[1].Cond != 3 {
		t.Fatalf("Lits not sorted: %v", ls)
	}
	neg := ls[0].Negate()
	if neg.Cond != 1 || neg.Val {
		t.Fatalf("Negate wrong: %v", neg)
	}
	if ls[1].String() != "!c3" || ls[0].String() != "c1" {
		t.Fatalf("Lit.String wrong: %v %v", ls[0], ls[1])
	}
}

func TestCompareOrdering(t *testing.T) {
	a := MustCube(lit(0, true))
	b := MustCube(lit(0, false))
	if a.Compare(b) >= 0 {
		t.Fatalf("positive literal should sort before negative for same condition")
	}
	c := MustCube(lit(0, true), lit(1, true))
	if a.Compare(c) >= 0 {
		t.Fatalf("shorter prefix cube should sort before its extension")
	}
	if a.Compare(a) != 0 {
		t.Fatalf("cube must compare equal to itself")
	}
}

func TestDNFBasics(t *testing.T) {
	if !DNFTrue().IsTrue() || DNFTrue().IsFalse() {
		t.Fatalf("DNFTrue misclassified")
	}
	if !DNFFalse().IsFalse() || DNFFalse().IsTrue() {
		t.Fatalf("DNFFalse misclassified")
	}
	d := FromCube(MustCube(lit(0, true)))
	if d.Len() != 1 || d.IsTrue() || d.IsFalse() {
		t.Fatalf("FromCube wrong: %v", d)
	}
	if got := DNFFalse().String(); got != "false" {
		t.Fatalf("false DNF renders %q", got)
	}
}

func TestDNFSimplifyComplementaryCubes(t *testing.T) {
	// q&C | q&!C should simplify to q.
	q := MustCube(lit(0, true))
	a := q.MustWith(1, true)
	b := q.MustWith(1, false)
	d := FromCubes(a, b)
	if d.Len() != 1 {
		t.Fatalf("simplify should merge complementary cubes, got %v", d)
	}
	if !d.Cubes()[0].Equal(q) {
		t.Fatalf("merged cube = %v, want %v", d.Cubes()[0], q)
	}
}

func TestDNFSimplifySubsumption(t *testing.T) {
	q := MustCube(lit(0, true))
	qc := q.MustWith(1, true)
	d := FromCubes(q, qc)
	if d.Len() != 1 || !d.Cubes()[0].Equal(q) {
		t.Fatalf("q | q&C should simplify to q, got %v", d)
	}
	// Duplicates collapse.
	d2 := FromCubes(q, q, q)
	if d2.Len() != 1 {
		t.Fatalf("duplicate cubes should collapse, got %v", d2)
	}
}

func TestDNFSimplifyToTrue(t *testing.T) {
	a := MustCube(lit(0, true))
	b := MustCube(lit(0, false))
	d := FromCubes(a, b)
	if !d.IsTrue() {
		t.Fatalf("C | !C should simplify to true, got %v", d)
	}
}

func TestDNFOrAnd(t *testing.T) {
	c := FromCube(MustCube(lit(1, true)))
	k := FromCube(MustCube(lit(2, true)))
	or := c.Or(k)
	if or.Len() != 2 {
		t.Fatalf("C | K should have two cubes, got %v", or)
	}
	and := c.And(k)
	if and.Len() != 1 || and.Cubes()[0].Len() != 2 {
		t.Fatalf("C & K should be one two-literal cube, got %v", and)
	}
	// (C | K) & !C  ==  K & !C  (the C cube drops out).
	notC := FromCube(MustCube(lit(1, false)))
	res := or.And(notC)
	want := MustCube(lit(1, false), lit(2, true))
	if res.Len() != 1 || !res.Cubes()[0].Equal(want) {
		t.Fatalf("(C|K)&!C = %v, want single cube %v", res, want)
	}
	if !DNFFalse().And(c).IsFalse() {
		t.Fatalf("false & C should be false")
	}
	if !DNFTrue().And(c).Equivalent(c) {
		t.Fatalf("true & C should be C")
	}
}

func TestDNFSatisfiedBy(t *testing.T) {
	guard := FromCube(MustCube(lit(0, true), lit(2, true))) // D & K
	full := MustCube(lit(0, true), lit(1, false), lit(2, true))
	if !guard.SatisfiedBy(full) {
		t.Fatalf("D&K should be satisfied by D&!C&K")
	}
	partial := MustCube(lit(0, true))
	if guard.SatisfiedBy(partial) {
		t.Fatalf("D&K must not be satisfied by D alone (K unknown)")
	}
	if guard.FalsifiedBy(partial) {
		t.Fatalf("D&K is not falsified by D alone")
	}
	noK := MustCube(lit(0, true), lit(2, false))
	if !guard.FalsifiedBy(noK) {
		t.Fatalf("D&K should be falsified by D&!K")
	}
	if !DNFTrue().SatisfiedBy(True()) {
		t.Fatalf("true guard is satisfied by the empty assignment")
	}
	if DNFFalse().SatisfiedBy(full) {
		t.Fatalf("false guard is never satisfied")
	}
	if cube, ok := guard.SatisfiedCube(full); !ok || cube.Len() != 2 {
		t.Fatalf("SatisfiedCube failed: %v %v", cube, ok)
	}
}

func TestDNFImpliesAndEquivalent(t *testing.T) {
	dck := FromCube(MustCube(lit(0, true), lit(1, true)))
	d := FromCube(MustCube(lit(0, true)))
	if !dck.Implies(d) {
		t.Fatalf("D&C should imply D")
	}
	if d.Implies(dck) {
		t.Fatalf("D should not imply D&C")
	}
	// D&C | D&!C is equivalent to D.
	split := FromCubes(
		MustCube(lit(0, true), lit(1, true)),
		MustCube(lit(0, true), lit(1, false)),
	)
	if !split.Equivalent(d) {
		t.Fatalf("D&C | D&!C should be equivalent to D")
	}
	if !DNFFalse().Implies(d) {
		t.Fatalf("false implies everything")
	}
	if !d.Implies(DNFTrue()) {
		t.Fatalf("everything implies true")
	}
}

func TestDNFConds(t *testing.T) {
	d := FromCubes(
		MustCube(lit(3, true)),
		MustCube(lit(1, false), lit(5, true)),
	)
	conds := d.Conds()
	if len(conds) != 3 || conds[0] != 1 || conds[1] != 3 || conds[2] != 5 {
		t.Fatalf("Conds = %v", conds)
	}
}

func TestDNFFormat(t *testing.T) {
	names := map[Cond]string{0: "D", 1: "C"}
	n := func(c Cond) string { return names[c] }
	d := FromCubes(MustCube(lit(0, true)), MustCube(lit(1, false)))
	got := d.Format(n)
	if got != "D | !C" && got != "!C | D" {
		t.Fatalf("Format = %q", got)
	}
}

// randomCube builds a random cube over conditions [0, nConds) for property tests.
func randomCube(r *rand.Rand, nConds int) Cube {
	c := True()
	for i := 0; i < nConds; i++ {
		switch r.Intn(3) {
		case 0:
			c = c.MustWith(Cond(i), true)
		case 1:
			c = c.MustWith(Cond(i), false)
		}
	}
	return c
}

func TestPropertyAndCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randomCube(r, 5)
		b := randomCube(r, 5)
		ab, ok1 := a.And(b)
		ba, ok2 := b.And(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyImpliesIsPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randomCube(r, 5)
		b := randomCube(r, 5)
		c := randomCube(r, 5)
		// Reflexivity.
		if !a.Implies(a) {
			return false
		}
		// Transitivity.
		if a.Implies(b) && b.Implies(c) && !a.Implies(c) {
			return false
		}
		// Antisymmetry (implies both ways means equal).
		if a.Implies(b) && b.Implies(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompatibleIffAndSatisfiable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := randomCube(r, 6)
		b := randomCube(r, 6)
		_, ok := a.And(b)
		return ok == a.Compatible(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 2 + r.Intn(4)
		cubes := make([]Cube, n)
		for i := range cubes {
			cubes[i] = randomCube(r, 4)
		}
		raw := DNF{cubes: cubes}
		simp := raw.Simplify()
		// Compare by brute-force truth table over the 4 conditions.
		conds := []Cond{0, 1, 2, 3}
		equal := true
		assignments(conds, func(a Cube) bool {
			if raw.SatisfiedBy(a) != simp.SatisfiedBy(a) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDNFOrIsUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a := FromCube(randomCube(r, 4))
		b := FromCube(randomCube(r, 4))
		or := a.Or(b)
		return a.Implies(or) && b.Implies(or)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDNFAndIsLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		a := FromCube(randomCube(r, 4))
		b := FromCube(randomCube(r, 4))
		and := a.And(b)
		return and.Implies(a) && and.Implies(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentsEnumeratesAll(t *testing.T) {
	count := 0
	assignments([]Cond{0, 1, 2}, func(c Cube) bool {
		if c.Len() != 3 {
			t.Fatalf("assignment with wrong length: %v", c)
		}
		count++
		return true
	})
	if count != 8 {
		t.Fatalf("enumerated %d assignments, want 8", count)
	}
	// Early stop.
	count = 0
	assignments([]Cond{0, 1, 2}, func(Cube) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed, count=%d", count)
	}
}
