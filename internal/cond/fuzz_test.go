package cond

import "testing"

// FuzzCube drives a cube through an arbitrary sequence of With operations
// and checks the algebraic invariants the merging algorithm relies on
// (Theorem 1/2 reasoning is built on these): literals stay strictly sorted,
// self-implication and self-compatibility hold, contradictory extensions are
// refused, and the byte key is canonical. Run with
// `go test -fuzz FuzzCube ./internal/cond`.
func FuzzCube(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 5, 1})
	f.Add([]byte{7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c := True()
		for _, op := range ops {
			x := Cond(op >> 1 & 0x0f)
			v := op&1 == 1
			next, ok := c.With(x, v)
			if have, known := c.Value(x); known {
				// Re-asserting a known value must succeed iff it matches.
				if ok != (have == v) {
					t.Fatalf("With(%d,%v) ok=%v but cube has %v", x, v, ok, have)
				}
				if ok && !next.Equal(c) {
					t.Fatalf("re-asserting a literal changed the cube")
				}
			} else if !ok {
				t.Fatalf("adding a fresh literal must succeed")
			}
			if ok {
				c = next
			}
		}
		lits := c.Lits()
		for i := 1; i < len(lits); i++ {
			if lits[i-1].Cond >= lits[i].Cond {
				t.Fatalf("literals not strictly sorted: %v", lits)
			}
		}
		if !c.Implies(c) || !c.Equal(c) || !c.Compatible(c) {
			t.Fatalf("self relations violated for %s", c)
		}
		if !c.Implies(True()) {
			t.Fatalf("every cube implies true")
		}
		if !True().Compatible(c) {
			t.Fatalf("true is compatible with every cube")
		}
		and, ok := c.And(c)
		if !ok || !and.Equal(c) {
			t.Fatalf("c AND c must be c")
		}
		rebuilt := True()
		for _, l := range lits {
			rebuilt = rebuilt.MustWith(l.Cond, l.Val)
		}
		if rebuilt.Key() != c.Key() {
			t.Fatalf("key not canonical: %q vs %q", rebuilt.Key(), c.Key())
		}
	})
}
