// Package cond implements the boolean condition algebra used by conditional
// process graphs: condition identifiers, literals, conjunctions of literals
// (cubes) and disjunctive normal forms (guards).
//
// A condition is a boolean value computed at run time by a disjunction
// process. A cube assigns a value to a subset of the conditions and stands
// for the conjunction of the corresponding literals; the empty cube is the
// constant true. Guards of processes and labels of alternative paths are
// represented as cubes or as small DNFs (disjunctions of cubes).
//
// All values are immutable: every operation returns a new value and never
// modifies its receiver or arguments.
package cond

import (
	"fmt"
	"sort"
	"strings"
)

// Cond identifies a condition within a graph. Conditions are small
// non-negative integers handed out by the graph builder.
type Cond int

// None is the sentinel for "no condition".
const None Cond = -1

// Lit is a single condition literal: the condition Cond with value Val.
type Lit struct {
	Cond Cond
	Val  bool
}

// String renders the literal as "c3" or "!c3".
func (l Lit) String() string {
	if l.Val {
		return fmt.Sprintf("c%d", int(l.Cond))
	}
	return fmt.Sprintf("!c%d", int(l.Cond))
}

// Negate returns the literal with the opposite value.
func (l Lit) Negate() Lit { return Lit{Cond: l.Cond, Val: !l.Val} }

// Namer translates a condition identifier into a human readable name.
// A nil Namer falls back to "c<id>".
type Namer func(Cond) string

func defaultName(c Cond) string { return fmt.Sprintf("c%d", int(c)) }

func nameOf(n Namer, c Cond) string {
	if n == nil {
		return defaultName(c)
	}
	s := n(c)
	if s == "" {
		return defaultName(c)
	}
	return s
}

// Cube is a conjunction of condition literals. The zero value is the constant
// true (the empty conjunction). Cubes are immutable.
type Cube struct {
	m map[Cond]bool
}

// True returns the empty cube (constant true).
func True() Cube { return Cube{} }

// NewCube builds a cube from the given literals. The second return value is
// false when two literals assign opposite values to the same condition, in
// which case the conjunction is unsatisfiable.
func NewCube(lits ...Lit) (Cube, bool) {
	c := Cube{}
	ok := true
	for _, l := range lits {
		c, ok = c.With(l.Cond, l.Val)
		if !ok {
			return Cube{}, false
		}
	}
	return c, true
}

// MustCube is like NewCube but panics on an unsatisfiable conjunction. It is
// intended for tests and literal construction of known-consistent cubes.
func MustCube(lits ...Lit) Cube {
	c, ok := NewCube(lits...)
	if !ok {
		panic("cond: MustCube called with contradictory literals")
	}
	return c
}

// IsTrue reports whether the cube is the empty conjunction.
func (c Cube) IsTrue() bool { return len(c.m) == 0 }

// Len returns the number of literals in the cube.
func (c Cube) Len() int { return len(c.m) }

// Value returns the value assigned to condition x and whether x appears in
// the cube.
func (c Cube) Value(x Cond) (bool, bool) {
	v, ok := c.m[x]
	return v, ok
}

// Has reports whether condition x appears in the cube.
func (c Cube) Has(x Cond) bool {
	_, ok := c.m[x]
	return ok
}

func (c Cube) clone() Cube {
	if len(c.m) == 0 {
		return Cube{}
	}
	m := make(map[Cond]bool, len(c.m))
	for k, v := range c.m {
		m[k] = v
	}
	return Cube{m: m}
}

// With returns a copy of the cube extended with the literal (x, v). The
// second return value is false when the cube already assigns the opposite
// value to x.
func (c Cube) With(x Cond, v bool) (Cube, bool) {
	if old, ok := c.m[x]; ok {
		if old != v {
			return Cube{}, false
		}
		return c, true
	}
	n := c.clone()
	if n.m == nil {
		n.m = make(map[Cond]bool, 1)
	}
	n.m[x] = v
	return n, true
}

// MustWith is like With but panics on contradiction.
func (c Cube) MustWith(x Cond, v bool) Cube {
	n, ok := c.With(x, v)
	if !ok {
		panic(fmt.Sprintf("cond: MustWith(%d,%v) contradicts existing literal", int(x), v))
	}
	return n
}

// Without returns a copy of the cube with condition x removed.
func (c Cube) Without(x Cond) Cube {
	if !c.Has(x) {
		return c
	}
	n := c.clone()
	delete(n.m, x)
	return n
}

// And returns the conjunction of two cubes. The second return value is false
// when the conjunction is unsatisfiable.
func (c Cube) And(o Cube) (Cube, bool) {
	if len(c.m) < len(o.m) {
		c, o = o, c
	}
	n := c
	ok := true
	for k, v := range o.m {
		n, ok = n.With(k, v)
		if !ok {
			return Cube{}, false
		}
	}
	return n, true
}

// Compatible reports whether the conjunction of the two cubes is satisfiable,
// i.e. no condition appears with opposite values.
func (c Cube) Compatible(o Cube) bool {
	small, big := c, o
	if len(small.m) > len(big.m) {
		small, big = big, small
	}
	for k, v := range small.m {
		if w, ok := big.m[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Implies reports whether c logically implies o, i.e. every literal of o
// appears in c with the same value.
func (c Cube) Implies(o Cube) bool {
	for k, v := range o.m {
		w, ok := c.m[k]
		if !ok || w != v {
			return false
		}
	}
	return true
}

// Equal reports whether the two cubes contain exactly the same literals.
func (c Cube) Equal(o Cube) bool {
	if len(c.m) != len(o.m) {
		return false
	}
	for k, v := range c.m {
		if w, ok := o.m[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// CondsSubsetOf reports whether every condition mentioned by c is also
// mentioned by o (regardless of values).
func (c Cube) CondsSubsetOf(o Cube) bool {
	for k := range c.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// Conds returns the conditions mentioned by the cube in ascending order.
func (c Cube) Conds() []Cond {
	out := make([]Cond, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lits returns the literals of the cube ordered by condition.
func (c Cube) Lits() []Lit {
	conds := c.Conds()
	out := make([]Lit, 0, len(conds))
	for _, k := range conds {
		out = append(out, Lit{Cond: k, Val: c.m[k]})
	}
	return out
}

// Key returns a canonical string usable as a map key for the cube.
func (c Cube) Key() string {
	if c.IsTrue() {
		return "1"
	}
	var b strings.Builder
	for i, l := range c.Lits() {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.String())
	}
	return b.String()
}

// String renders the cube with default condition names ("true" for the empty
// cube, "c0&!c1" otherwise).
func (c Cube) String() string { return c.Format(nil) }

// Format renders the cube using the given Namer, joining literals with the
// unicode conjunction sign used by the paper's tables.
func (c Cube) Format(n Namer) string {
	if c.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, len(c.m))
	for _, l := range c.Lits() {
		name := nameOf(n, l.Cond)
		if l.Val {
			parts = append(parts, name)
		} else {
			parts = append(parts, "!"+name)
		}
	}
	return strings.Join(parts, "&")
}

// Compare orders cubes first by number of literals, then lexicographically by
// (condition, value). It returns a negative number, zero or a positive number
// as c sorts before, equal to or after o. It is used for stable table layout.
func (c Cube) Compare(o Cube) int {
	a, b := c.Lits(), o.Lits()
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Cond != b[i].Cond {
			return int(a[i].Cond) - int(b[i].Cond)
		}
		if a[i].Val != b[i].Val {
			if a[i].Val {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
