// Package cond implements the boolean condition algebra used by conditional
// process graphs: condition identifiers, literals, conjunctions of literals
// (cubes) and disjunctive normal forms (guards).
//
// A condition is a boolean value computed at run time by a disjunction
// process. A cube assigns a value to a subset of the conditions and stands
// for the conjunction of the corresponding literals; the empty cube is the
// constant true. Guards of processes and labels of alternative paths are
// represented as cubes or as small DNFs (disjunctions of cubes).
//
// All values are immutable: every operation returns a new value and never
// modifies its receiver or arguments.
//
// Cubes are backed by a slice of literals sorted by condition identifier.
// Compared to the earlier map-backed representation this makes the read-only
// operations (Implies, Compatible, Equal, Lits, Compare) allocation-free and
// the extending operations (With, And) a single allocation, which matters
// because the scheduling core evaluates guards inside its innermost loops.
package cond

import (
	"fmt"
	"strconv"
	"strings"
)

// Cond identifies a condition within a graph. Conditions are small
// non-negative integers handed out by the graph builder.
type Cond int

// None is the sentinel for "no condition".
const None Cond = -1

// Lit is a single condition literal: the condition Cond with value Val.
type Lit struct {
	Cond Cond
	Val  bool
}

// String renders the literal as "c3" or "!c3".
func (l Lit) String() string {
	if l.Val {
		return fmt.Sprintf("c%d", int(l.Cond))
	}
	return fmt.Sprintf("!c%d", int(l.Cond))
}

// Negate returns the literal with the opposite value.
func (l Lit) Negate() Lit { return Lit{Cond: l.Cond, Val: !l.Val} }

// Namer translates a condition identifier into a human readable name.
// A nil Namer falls back to "c<id>".
type Namer func(Cond) string

func defaultName(c Cond) string { return fmt.Sprintf("c%d", int(c)) }

func nameOf(n Namer, c Cond) string {
	if n == nil {
		return defaultName(c)
	}
	s := n(c)
	if s == "" {
		return defaultName(c)
	}
	return s
}

// Cube is a conjunction of condition literals. The zero value is the constant
// true (the empty conjunction). Cubes are immutable: the backing literal slice
// is never modified after construction and may be shared between cubes.
type Cube struct {
	lits []Lit // sorted by Cond, at most one literal per condition
}

// True returns the empty cube (constant true).
func True() Cube { return Cube{} }

// NewCube builds a cube from the given literals. The second return value is
// false when two literals assign opposite values to the same condition, in
// which case the conjunction is unsatisfiable.
func NewCube(lits ...Lit) (Cube, bool) {
	if len(lits) == 0 {
		return Cube{}, true
	}
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		// Insertion sort by condition; cubes are tiny.
		i := len(out)
		for i > 0 && out[i-1].Cond > l.Cond {
			i--
		}
		if i > 0 && out[i-1].Cond == l.Cond {
			if out[i-1].Val != l.Val {
				return Cube{}, false
			}
			continue
		}
		out = append(out, Lit{})
		copy(out[i+1:], out[i:])
		out[i] = l
	}
	return Cube{lits: out}, true
}

// MustCube is like NewCube but panics on an unsatisfiable conjunction. It is
// intended for tests and literal construction of known-consistent cubes.
func MustCube(lits ...Lit) Cube {
	c, ok := NewCube(lits...)
	if !ok {
		panic("cond: MustCube called with contradictory literals")
	}
	return c
}

// CubeFromOwnedLits builds a cube taking ownership of lits: the slice is
// sorted in place and becomes the cube's backing storage, so the caller must
// not read or modify it afterwards. Duplicate literals are compacted; the
// second return value is false when two literals contradict. It exists for
// hot paths that assemble the literal list themselves and would otherwise pay
// NewCube's defensive copy.
func CubeFromOwnedLits(lits []Lit) (Cube, bool) {
	if len(lits) == 0 {
		return Cube{}, true
	}
	// Insertion sort by condition; cubes are tiny.
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i
		for j > 0 && lits[j-1].Cond > l.Cond {
			lits[j] = lits[j-1]
			j--
		}
		lits[j] = l
	}
	out := lits[:1]
	for _, l := range lits[1:] {
		last := out[len(out)-1]
		if last.Cond == l.Cond {
			if last.Val != l.Val {
				return Cube{}, false
			}
			continue
		}
		out = append(out, l)
	}
	return Cube{lits: out}, true
}

// IsTrue reports whether the cube is the empty conjunction.
func (c Cube) IsTrue() bool { return len(c.lits) == 0 }

// Len returns the number of literals in the cube.
func (c Cube) Len() int { return len(c.lits) }

// find returns the index of condition x in the literal slice, or -1. Cubes
// hold a handful of literals, so a linear scan beats binary search.
func (c Cube) find(x Cond) int {
	for i, l := range c.lits {
		if l.Cond == x {
			return i
		}
		if l.Cond > x {
			break
		}
	}
	return -1
}

// Value returns the value assigned to condition x and whether x appears in
// the cube.
func (c Cube) Value(x Cond) (bool, bool) {
	if i := c.find(x); i >= 0 {
		return c.lits[i].Val, true
	}
	return false, false
}

// Has reports whether condition x appears in the cube.
func (c Cube) Has(x Cond) bool { return c.find(x) >= 0 }

// With returns a copy of the cube extended with the literal (x, v). The
// second return value is false when the cube already assigns the opposite
// value to x.
func (c Cube) With(x Cond, v bool) (Cube, bool) {
	// Find the insertion point (first literal with Cond >= x).
	i := 0
	for i < len(c.lits) && c.lits[i].Cond < x {
		i++
	}
	if i < len(c.lits) && c.lits[i].Cond == x {
		if c.lits[i].Val != v {
			return Cube{}, false
		}
		return c, true
	}
	n := make([]Lit, len(c.lits)+1)
	copy(n, c.lits[:i])
	n[i] = Lit{Cond: x, Val: v}
	copy(n[i+1:], c.lits[i:])
	return Cube{lits: n}, true
}

// MustWith is like With but panics on contradiction.
func (c Cube) MustWith(x Cond, v bool) Cube {
	n, ok := c.With(x, v)
	if !ok {
		panic(fmt.Sprintf("cond: MustWith(%d,%v) contradicts existing literal", int(x), v))
	}
	return n
}

// Without returns a copy of the cube with condition x removed.
func (c Cube) Without(x Cond) Cube {
	i := c.find(x)
	if i < 0 {
		return c
	}
	if len(c.lits) == 1 {
		return Cube{}
	}
	n := make([]Lit, len(c.lits)-1)
	copy(n, c.lits[:i])
	copy(n[i:], c.lits[i+1:])
	return Cube{lits: n}
}

// And returns the conjunction of two cubes. The second return value is false
// when the conjunction is unsatisfiable.
func (c Cube) And(o Cube) (Cube, bool) {
	if len(o.lits) == 0 {
		return c, true
	}
	if len(c.lits) == 0 {
		return o, true
	}
	n := make([]Lit, 0, len(c.lits)+len(o.lits))
	i, j := 0, 0
	for i < len(c.lits) && j < len(o.lits) {
		a, b := c.lits[i], o.lits[j]
		switch {
		case a.Cond < b.Cond:
			n = append(n, a)
			i++
		case a.Cond > b.Cond:
			n = append(n, b)
			j++
		default:
			if a.Val != b.Val {
				return Cube{}, false
			}
			n = append(n, a)
			i, j = i+1, j+1
		}
	}
	n = append(n, c.lits[i:]...)
	n = append(n, o.lits[j:]...)
	return Cube{lits: n}, true
}

// Compatible reports whether the conjunction of the two cubes is satisfiable,
// i.e. no condition appears with opposite values.
func (c Cube) Compatible(o Cube) bool {
	i, j := 0, 0
	for i < len(c.lits) && j < len(o.lits) {
		a, b := c.lits[i], o.lits[j]
		switch {
		case a.Cond < b.Cond:
			i++
		case a.Cond > b.Cond:
			j++
		default:
			if a.Val != b.Val {
				return false
			}
			i, j = i+1, j+1
		}
	}
	return true
}

// Implies reports whether c logically implies o, i.e. every literal of o
// appears in c with the same value.
func (c Cube) Implies(o Cube) bool {
	if len(o.lits) > len(c.lits) {
		return false
	}
	i := 0
	for _, b := range o.lits {
		for i < len(c.lits) && c.lits[i].Cond < b.Cond {
			i++
		}
		if i >= len(c.lits) || c.lits[i].Cond != b.Cond || c.lits[i].Val != b.Val {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether the two cubes contain exactly the same literals.
func (c Cube) Equal(o Cube) bool {
	if len(c.lits) != len(o.lits) {
		return false
	}
	for i, l := range c.lits {
		if o.lits[i] != l {
			return false
		}
	}
	return true
}

// CondsSubsetOf reports whether every condition mentioned by c is also
// mentioned by o (regardless of values).
func (c Cube) CondsSubsetOf(o Cube) bool {
	if len(c.lits) > len(o.lits) {
		return false
	}
	i := 0
	for _, l := range c.lits {
		for i < len(o.lits) && o.lits[i].Cond < l.Cond {
			i++
		}
		if i >= len(o.lits) || o.lits[i].Cond != l.Cond {
			return false
		}
		i++
	}
	return true
}

// Conds returns the conditions mentioned by the cube in ascending order.
func (c Cube) Conds() []Cond {
	out := make([]Cond, len(c.lits))
	for i, l := range c.lits {
		out[i] = l.Cond
	}
	return out
}

// Lits returns the literals of the cube ordered by condition. The returned
// slice is the cube's backing storage and must not be modified.
func (c Cube) Lits() []Lit { return c.lits }

// Key returns a canonical string usable as a map key for the cube.
func (c Cube) Key() string { return string(c.AppendKey(nil)) }

// AppendKey appends the canonical key of the cube to dst and returns it.
// Combined with Go's free []byte-to-string conversion in map lookups, this
// lets hot paths key maps by expression without allocating per lookup.
func (c Cube) AppendKey(dst []byte) []byte {
	if c.IsTrue() {
		return append(dst, '1')
	}
	for i, l := range c.lits {
		if i > 0 {
			dst = append(dst, '.')
		}
		if !l.Val {
			dst = append(dst, '!')
		}
		dst = append(dst, 'c')
		dst = strconv.AppendInt(dst, int64(l.Cond), 10)
	}
	return dst
}

// String renders the cube with default condition names ("true" for the empty
// cube, "c0&!c1" otherwise).
func (c Cube) String() string { return c.Format(nil) }

// Format renders the cube using the given Namer, joining literals with the
// unicode conjunction sign used by the paper's tables.
func (c Cube) Format(n Namer) string {
	if c.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, len(c.lits))
	for _, l := range c.lits {
		name := nameOf(n, l.Cond)
		if l.Val {
			parts = append(parts, name)
		} else {
			parts = append(parts, "!"+name)
		}
	}
	return strings.Join(parts, "&")
}

// Compare orders cubes first by number of literals, then lexicographically by
// (condition, value). It returns a negative number, zero or a positive number
// as c sorts before, equal to or after o. It is used for stable table layout.
func (c Cube) Compare(o Cube) int {
	a, b := c.lits, o.lits
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Cond != b[i].Cond {
			return int(a[i].Cond) - int(b[i].Cond)
		}
		if a[i].Val != b[i].Val {
			if a[i].Val {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
