// Package cond implements the boolean condition algebra used by conditional
// process graphs: condition identifiers, literals, conjunctions of literals
// (cubes) and disjunctive normal forms (guards).
//
// A condition is a boolean value computed at run time by a disjunction
// process. A cube assigns a value to a subset of the conditions and stands
// for the conjunction of the corresponding literals; the empty cube is the
// constant true. Guards of processes and labels of alternative paths are
// represented as cubes or as small DNFs (disjunctions of cubes).
//
// All values are immutable: every operation returns a new value and never
// modifies its receiver or arguments.
//
// Cubes are backed by a pair of uint64 bitmasks (conditions assigned true and
// conditions assigned false), so a cube is a 16-byte value with no heap
// backing at all. Compared to the earlier sorted-literal-slice representation
// this makes every read-only operation (Implies, Compatible, Equal,
// CondsSubsetOf) and every extending operation (With, And) a handful of mask
// instructions with zero allocations, turns Equal into ==, and makes Cube a
// comparable type usable directly as a map key — which matters because the
// scheduling core evaluates guards inside its innermost loops and the table
// keys rows by expression. The price is a hard cap of MaxConds conditions per
// graph, far above anything the paper's sweep (≤ ~10 conditions) produces.
package cond

import (
	"fmt"
	"math/bits"
	"strings"
)

// Cond identifies a condition within a graph. Conditions are small
// non-negative integers handed out by the graph builder; the bitset cube
// representation requires them to stay below MaxConds.
type Cond int

// None is the sentinel for "no condition".
const None Cond = -1

// MaxConds is the largest number of conditions a single graph may declare:
// condition identifiers must fit in one uint64 bitmask. Graph construction
// rejects graphs beyond the limit before any cube is built; cube operations
// that would silently wrap instead panic loudly.
const MaxConds = 64

// checkCond panics when a condition identifier cannot be represented in the
// bitset. Failing loudly here is deliberate: a shifted-out bit would silently
// alias condition x and condition x-64, corrupting guards.
func checkCond(x Cond) {
	if x < 0 || x >= MaxConds {
		panic(fmt.Sprintf("cond: condition %d outside bitset range [0,%d)", int(x), MaxConds))
	}
}

// Lit is a single condition literal: the condition Cond with value Val.
type Lit struct {
	Cond Cond
	Val  bool
}

// String renders the literal as "c3" or "!c3".
func (l Lit) String() string {
	if l.Val {
		return fmt.Sprintf("c%d", int(l.Cond))
	}
	return fmt.Sprintf("!c%d", int(l.Cond))
}

// Negate returns the literal with the opposite value.
func (l Lit) Negate() Lit { return Lit{Cond: l.Cond, Val: !l.Val} }

// Namer translates a condition identifier into a human readable name.
// A nil Namer falls back to "c<id>".
type Namer func(Cond) string

func defaultName(c Cond) string { return fmt.Sprintf("c%d", int(c)) }

func nameOf(n Namer, c Cond) string {
	if n == nil {
		return defaultName(c)
	}
	s := n(c)
	if s == "" {
		return defaultName(c)
	}
	return s
}

// Cube is a conjunction of condition literals. The zero value is the constant
// true (the empty conjunction). Cubes are immutable 16-byte values: bit i of
// pos means "condition i is true", bit i of neg means "condition i is false",
// and the two masks are always disjoint. Cube is comparable; == coincides
// with Equal, so cubes can key maps directly.
type Cube struct {
	pos, neg uint64
}

// True returns the empty cube (constant true).
func True() Cube { return Cube{} }

// NewCube builds a cube from the given literals. The second return value is
// false when two literals assign opposite values to the same condition, in
// which case the conjunction is unsatisfiable. Literal order is irrelevant;
// the cube is canonical by construction.
func NewCube(lits ...Lit) (Cube, bool) {
	var c Cube
	for _, l := range lits {
		checkCond(l.Cond)
		bit := uint64(1) << uint(l.Cond)
		if l.Val {
			c.pos |= bit
		} else {
			c.neg |= bit
		}
	}
	if c.pos&c.neg != 0 {
		return Cube{}, false
	}
	return c, true
}

// MustCube is like NewCube but panics on an unsatisfiable conjunction. It is
// intended for tests and literal construction of known-consistent cubes.
func MustCube(lits ...Lit) Cube {
	c, ok := NewCube(lits...)
	if !ok {
		panic("cond: MustCube called with contradictory literals")
	}
	return c
}

// CubeFromOwnedLits builds a cube from a caller-assembled literal slice.
// Duplicate literals are compacted; the second return value is false when two
// literals contradict.
//
// Historically the slice became the cube's backing storage ("owned"), which
// left an aliasing hole: a later append or write through the caller's slice
// silently mutated the supposedly immutable cube. The bitset representation
// closes that hole structurally — the literals are folded into the masks and
// the slice is never retained — so this is now just NewCube under a name kept
// for hot-path callers.
func CubeFromOwnedLits(lits []Lit) (Cube, bool) { return NewCube(lits...) }

// IsTrue reports whether the cube is the empty conjunction.
func (c Cube) IsTrue() bool { return c.pos|c.neg == 0 }

// Len returns the number of literals in the cube.
func (c Cube) Len() int { return bits.OnesCount64(c.pos | c.neg) }

// Value returns the value assigned to condition x and whether x appears in
// the cube. Out-of-range conditions (including None) are simply absent.
func (c Cube) Value(x Cond) (bool, bool) {
	if x < 0 || x >= MaxConds {
		return false, false
	}
	bit := uint64(1) << uint(x)
	if c.pos&bit != 0 {
		return true, true
	}
	if c.neg&bit != 0 {
		return false, true
	}
	return false, false
}

// Has reports whether condition x appears in the cube.
func (c Cube) Has(x Cond) bool {
	if x < 0 || x >= MaxConds {
		return false
	}
	return (c.pos|c.neg)&(uint64(1)<<uint(x)) != 0
}

// With returns a copy of the cube extended with the literal (x, v). The
// second return value is false when the cube already assigns the opposite
// value to x.
func (c Cube) With(x Cond, v bool) (Cube, bool) {
	checkCond(x)
	bit := uint64(1) << uint(x)
	if v {
		if c.neg&bit != 0 {
			return Cube{}, false
		}
		c.pos |= bit
	} else {
		if c.pos&bit != 0 {
			return Cube{}, false
		}
		c.neg |= bit
	}
	return c, true
}

// MustWith is like With but panics on contradiction.
func (c Cube) MustWith(x Cond, v bool) Cube {
	n, ok := c.With(x, v)
	if !ok {
		panic(fmt.Sprintf("cond: MustWith(%d,%v) contradicts existing literal", int(x), v))
	}
	return n
}

// Without returns a copy of the cube with condition x removed.
func (c Cube) Without(x Cond) Cube {
	if x < 0 || x >= MaxConds {
		return c
	}
	bit := uint64(1) << uint(x)
	c.pos &^= bit
	c.neg &^= bit
	return c
}

// And returns the conjunction of two cubes. The second return value is false
// when the conjunction is unsatisfiable.
func (c Cube) And(o Cube) (Cube, bool) {
	n := Cube{pos: c.pos | o.pos, neg: c.neg | o.neg}
	if n.pos&n.neg != 0 {
		return Cube{}, false
	}
	return n, true
}

// Compatible reports whether the conjunction of the two cubes is satisfiable,
// i.e. no condition appears with opposite values.
func (c Cube) Compatible(o Cube) bool {
	return c.pos&o.neg == 0 && c.neg&o.pos == 0
}

// Implies reports whether c logically implies o, i.e. every literal of o
// appears in c with the same value.
func (c Cube) Implies(o Cube) bool {
	return o.pos&^c.pos == 0 && o.neg&^c.neg == 0
}

// Equal reports whether the two cubes contain exactly the same literals.
// Equivalent to ==.
func (c Cube) Equal(o Cube) bool { return c == o }

// CondsSubsetOf reports whether every condition mentioned by c is also
// mentioned by o (regardless of values).
func (c Cube) CondsSubsetOf(o Cube) bool {
	return (c.pos|c.neg)&^(o.pos|o.neg) == 0
}

// Mask returns the set of conditions mentioned by the cube as a bitmask
// (bit i set means condition i appears, with either value). Together with
// PosMask it lets hot loops walk a cube's literals without allocating:
//
//	for m := c.Mask(); m != 0; m &= m - 1 {
//		x := cond.Cond(bits.TrailingZeros64(m))
//		...
//	}
func (c Cube) Mask() uint64 { return c.pos | c.neg }

// PosMask returns the conditions assigned true as a bitmask.
func (c Cube) PosMask() uint64 { return c.pos }

// NegMask returns the conditions assigned false as a bitmask.
func (c Cube) NegMask() uint64 { return c.neg }

// Conds returns the conditions mentioned by the cube in ascending order.
func (c Cube) Conds() []Cond {
	m := c.pos | c.neg
	out := make([]Cond, 0, bits.OnesCount64(m))
	for ; m != 0; m &= m - 1 {
		out = append(out, Cond(bits.TrailingZeros64(m)))
	}
	return out
}

// Lits returns the literals of the cube ordered by condition. The returned
// slice is freshly allocated on every call — writes to it can never reach the
// cube. Hot paths should iterate Mask/PosMask instead and skip the
// allocation.
func (c Cube) Lits() []Lit { return c.AppendLits(nil) }

// AppendLits appends the literals of the cube, ordered by condition, to dst
// and returns the extended slice.
func (c Cube) AppendLits(dst []Lit) []Lit {
	for m := c.pos | c.neg; m != 0; m &= m - 1 {
		x := Cond(bits.TrailingZeros64(m))
		dst = append(dst, Lit{Cond: x, Val: c.pos&(uint64(1)<<uint(x)) != 0})
	}
	return dst
}

// Key returns a canonical string usable as a map key for the cube. Two cubes
// have equal keys exactly when they are Equal. Prefer keying maps by the Cube
// value itself (it is comparable); Key exists for contexts that need a string.
func (c Cube) Key() string { return string(c.AppendKey(nil)) }

// AppendKey appends the canonical key of the cube to dst and returns it. The
// key is a fixed 16-byte big-endian encoding of the (pos, neg) masks, so keys
// are integer-comparable and never allocate beyond the destination buffer.
func (c Cube) AppendKey(dst []byte) []byte {
	return append(dst,
		byte(c.pos>>56), byte(c.pos>>48), byte(c.pos>>40), byte(c.pos>>32),
		byte(c.pos>>24), byte(c.pos>>16), byte(c.pos>>8), byte(c.pos),
		byte(c.neg>>56), byte(c.neg>>48), byte(c.neg>>40), byte(c.neg>>32),
		byte(c.neg>>24), byte(c.neg>>16), byte(c.neg>>8), byte(c.neg))
}

// String renders the cube with default condition names ("true" for the empty
// cube, "c0&!c1" otherwise).
func (c Cube) String() string { return c.Format(nil) }

// Format renders the cube using the given Namer, joining literals with the
// conjunction sign used by the paper's tables.
func (c Cube) Format(n Namer) string {
	if c.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, c.Len())
	for m := c.pos | c.neg; m != 0; m &= m - 1 {
		x := Cond(bits.TrailingZeros64(m))
		name := nameOf(n, x)
		if c.pos&(uint64(1)<<uint(x)) != 0 {
			parts = append(parts, name)
		} else {
			parts = append(parts, "!"+name)
		}
	}
	return strings.Join(parts, "&")
}

// Compare orders cubes lexicographically by their (condition, value) literal
// sequence — positive literal before negative for the same condition — with a
// cube that is a strict prefix of another sorting first. It returns a
// negative number, zero or a positive number as c sorts before, equal to or
// after o. It is used for stable table layout and replicates the ordering of
// the earlier slice representation exactly, which the golden tables pin.
func (c Cube) Compare(o Cube) int {
	if c == o {
		return 0
	}
	am, bm := c.pos|c.neg, o.pos|o.neg
	for am != 0 && bm != 0 {
		ai := bits.TrailingZeros64(am)
		bi := bits.TrailingZeros64(bm)
		if ai != bi {
			return ai - bi
		}
		bit := uint64(1) << uint(ai)
		av, bv := c.pos&bit != 0, o.pos&bit != 0
		if av != bv {
			if av {
				return -1
			}
			return 1
		}
		am &= am - 1
		bm &= bm - 1
	}
	return bits.OnesCount64(am) - bits.OnesCount64(bm)
}
