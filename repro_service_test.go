package repro

import (
	"context"
	"errors"
	"testing"
)

// TestPublicServiceAPI exercises the public surface of the versioned
// document model and the scheduling service end to end: encode the worked
// example as a v1 document, schedule it through a service, compare against
// the direct Schedule call, and confirm the memo hit on the second request.
func TestPublicServiceAPI(t *testing.T) {
	g, a, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	doc := EncodeProblem(g, a, Options{})
	if doc.Version != ProblemVersion {
		t.Fatalf("document version %q", doc.Version)
	}
	hash, err := ProblemHash(doc)
	if err != nil || hash == "" {
		t.Fatalf("ProblemHash: %q, %v", hash, err)
	}
	prob, err := ProblemFromDoc(doc)
	if err != nil {
		t.Fatalf("ProblemFromDoc: %v", err)
	}

	svc, err := NewService(ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	sol, err := svc.Schedule(context.Background(), prob)
	if err != nil {
		t.Fatalf("Service.Schedule: %v", err)
	}
	want, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if EncodeSolution(sol.Result).TableText != EncodeSolution(want).TableText {
		t.Fatalf("service and direct schedules differ")
	}
	if sol.ProblemHash != hash {
		t.Fatalf("solution hash %q != document hash %q", sol.ProblemHash, hash)
	}
	again, err := svc.Schedule(context.Background(), prob)
	if err != nil {
		t.Fatalf("Service.Schedule: %v", err)
	}
	if !again.CacheHit {
		t.Fatalf("second request must be served from the memo")
	}

	if _, err := ScheduleContext(context.Background(), g, a, Options{Workers: -1}); !errors.Is(err, ErrNegativeWorkers) {
		t.Fatalf("negative workers must be rejected; got %v", err)
	}
}
